package main

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"
	"time"

	"rdfsum"
	"rdfsum/client"
	"rdfsum/internal/httpapi"
)

// envelope mirrors the /v1 error envelope for decoding in tests.
type envelope struct {
	Error struct {
		Code    string `json:"code"`
		Message string `json:"message"`
	} `json:"error"`
}

// doReq issues a request and decodes the error envelope if any.
func doReq(t *testing.T, method, url, body string) (*http.Response, envelope) {
	t.Helper()
	var rdr *strings.Reader
	if body == "" {
		rdr = strings.NewReader("")
	} else {
		rdr = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rdr)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var env envelope
	if resp.StatusCode >= 400 {
		if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
			t.Fatalf("%s %s: status %d but body is not the error envelope: %v", method, url, resp.StatusCode, err)
		}
	}
	return resp, env
}

// TestV1RouteAliases checks every route answers both under /v1 and at its
// legacy path, and that only the legacy alias carries the deprecation
// headers.
func TestV1RouteAliases(t *testing.T) {
	ts := testServer(t)
	routes := []struct{ method, path, body string }{
		{"GET", "/healthz", ""},
		{"GET", "/metrics", ""},
		{"GET", "/stats", ""},
		{"GET", "/summary", ""},
		{"GET", "/profile", ""},
		{"POST", "/query", "SELECT ?x WHERE { ?x ?p ?o . }"},
		{"POST", "/triples", "<http://x/s> <http://x/p> <http://x/o> .\n"},
		{"DELETE", "/triples", "<http://x/s> <http://x/p> <http://x/o> .\n"},
	}
	for _, rt := range routes {
		legacy, _ := doReq(t, rt.method, ts.URL+rt.path, rt.body)
		if legacy.StatusCode != http.StatusOK {
			t.Errorf("%s %s (legacy) status = %d", rt.method, rt.path, legacy.StatusCode)
		}
		if legacy.Header.Get("Deprecation") != "true" {
			t.Errorf("%s %s (legacy) missing Deprecation header", rt.method, rt.path)
		}
		if link := legacy.Header.Get("Link"); !strings.Contains(link, "/v1"+rt.path) || !strings.Contains(link, "successor-version") {
			t.Errorf("%s %s (legacy) Link = %q", rt.method, rt.path, link)
		}
		v1, _ := doReq(t, rt.method, ts.URL+"/v1"+rt.path, rt.body)
		if v1.StatusCode != http.StatusOK {
			t.Errorf("%s /v1%s status = %d", rt.method, rt.path, v1.StatusCode)
		}
		if v1.Header.Get("Deprecation") != "" {
			t.Errorf("%s /v1%s unexpectedly deprecated", rt.method, rt.path)
		}
	}
}

// TestV1ErrorEnvelope checks that every failure path answers with the
// JSON envelope and its documented status + stable code.
func TestV1ErrorEnvelope(t *testing.T) {
	ts := testServer(t) // memory-only
	cases := []struct {
		name, method, path, body string
		status                   int
		code                     string
	}{
		{"unknown route", "GET", "/v1/nope", "", 404, httpapi.CodeNotFound},
		{"unknown legacy route", "GET", "/nope", "", 404, httpapi.CodeNotFound},
		{"bad summary kind", "GET", "/v1/summary?kind=nope", "", 400, httpapi.CodeInvalidArgument},
		{"bad summary format", "GET", "/v1/summary?format=xml", "", 400, httpapi.CodeInvalidArgument},
		{"bad query text", "POST", "/v1/query", "NOT SPARQL", 400, httpapi.CodeParse},
		{"bad query limit", "POST", "/v1/query?limit=-3", "SELECT ?x WHERE { ?x ?p ?o . }", 400, httpapi.CodeInvalidArgument},
		{"bad prune kind", "POST", "/v1/query?prune=bogus", "SELECT ?x WHERE { ?x ?p ?o . }", 400, httpapi.CodeInvalidArgument},
		{"bad triples body", "POST", "/v1/triples", "not ntriples", 400, httpapi.CodeParse},
		{"compact without -live", "POST", "/v1/compact", "", 409, httpapi.CodeMemoryOnly},
	}
	for _, tc := range cases {
		resp, env := doReq(t, tc.method, ts.URL+tc.path, tc.body)
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status = %d, want %d", tc.name, resp.StatusCode, tc.status)
		}
		if env.Error.Code != tc.code {
			t.Errorf("%s: code = %q, want %q", tc.name, env.Error.Code, tc.code)
		}
		if env.Error.Message == "" {
			t.Errorf("%s: empty error message", tc.name)
		}
	}
}

// leaderFollowerServers boots a durable leader rdfsumd and a follower
// replicating from it, both as in-process httptest servers.
func leaderFollowerServers(t *testing.T) (leader, follower *httptest.Server, leaderSrv *server) {
	t.Helper()
	lsrv, err := newServer(serverConfig{liveDir: t.TempDir(), workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { lsrv.close() })
	lts := httptest.NewServer(lsrv.handler())
	t.Cleanup(lts.Close)

	fsrv, err := newServer(serverConfig{follow: lts.URL})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fsrv.close() })
	fts := httptest.NewServer(fsrv.handler())
	t.Cleanup(fts.Close)
	return lts, fts, lsrv
}

// waitReplicated polls the follower's /v1/replication until it reports
// zero lag against a tailing state.
func waitReplicated(t *testing.T, fc *client.Client) {
	t.Helper()
	ctx := context.Background()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		rs, err := fc.ReplicationStatus(ctx)
		if err == nil && rs.State == "tailing" && rs.LagBytes == 0 && rs.LagEpochs == 0 && rs.Bootstraps > 0 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	rs, err := fc.ReplicationStatus(ctx)
	t.Fatalf("follower did not catch up: %+v (err %v)", rs, err)
}

// queryRows fetches one query's rows through the typed client, sorted
// for comparison.
func queryRows(t *testing.T, c *client.Client, q string) []string {
	t.Helper()
	res, err := c.Query(context.Background(), q, nil)
	if err != nil {
		t.Fatal(err)
	}
	rows := make([]string, len(res.Rows))
	for i, r := range res.Rows {
		rows[i] = strings.Join(r, "\t")
	}
	sort.Strings(rows)
	return rows
}

// TestFollowerServesReadsRejectsWrites is the follower contract: reads
// are served (identically to the leader), mutations answer "read_only".
func TestFollowerServesReadsRejectsWrites(t *testing.T) {
	lts, fts, _ := leaderFollowerServers(t)
	lc, err := client.New(lts.URL)
	if err != nil {
		t.Fatal(err)
	}
	fc, err := client.New(fts.URL)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// Ingest on the leader, converge the follower.
	triples := rdfsum.GenerateBSBM(10).Decode()
	if _, err := lc.Ingest(ctx, triples); err != nil {
		t.Fatal(err)
	}
	waitReplicated(t, fc)

	// Identical query results on both sides.
	const q = "SELECT ?s ?o WHERE { ?s ?p ?o . }"
	if lrows, frows := queryRows(t, lc, q), queryRows(t, fc, q); !equalStrings(lrows, frows) {
		t.Fatalf("query results diverge: leader %d rows, follower %d rows", len(lrows), len(frows))
	}

	// Mutations are rejected with the stable code, and change nothing.
	for _, try := range []func() error{
		func() error { _, err := fc.Ingest(ctx, triples[:1]); return err },
		func() error { _, err := fc.Delete(ctx, triples[:1]); return err },
		func() error { _, err := fc.Compact(ctx); return err },
	} {
		err := try()
		if !client.IsCode(err, httpapi.CodeReadOnly) {
			t.Errorf("follower mutation error = %v, want code %q", err, httpapi.CodeReadOnly)
		}
	}

	// Raw HTTP contract: 403 + envelope on the mutating routes.
	for _, rt := range []struct{ method, path string }{
		{"POST", "/v1/triples"}, {"DELETE", "/v1/triples"}, {"POST", "/v1/compact"},
	} {
		resp, env := doReq(t, rt.method, fts.URL+rt.path, "<http://x/s> <http://x/p> <http://x/o> .\n")
		if resp.StatusCode != http.StatusForbidden || env.Error.Code != httpapi.CodeReadOnly {
			t.Errorf("%s %s: status %d code %q", rt.method, rt.path, resp.StatusCode, env.Error.Code)
		}
	}

	// Deletes on the leader converge too.
	if _, err := lc.Delete(ctx, triples[:20]); err != nil {
		t.Fatal(err)
	}
	waitReplicated(t, fc)
	if lrows, frows := queryRows(t, lc, q), queryRows(t, fc, q); !equalStrings(lrows, frows) {
		t.Fatalf("post-delete divergence: leader %d rows, follower %d rows", len(lrows), len(frows))
	}

	// Roles are reported on both ends.
	lrs, err := lc.ReplicationStatus(ctx)
	if err != nil || lrs.Role != "leader" {
		t.Errorf("leader role = %+v (err %v)", lrs, err)
	}
	frs, err := fc.ReplicationStatus(ctx)
	if err != nil || frs.Role != "follower" || frs.Leader != lts.URL {
		t.Errorf("follower role = %+v (err %v)", frs, err)
	}

	// Follower stats advertise read_only.
	fst, err := fc.Stats(ctx)
	if err != nil || !fst.ReadOnly {
		t.Errorf("follower stats read_only = %+v (err %v)", fst, err)
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestClientRoundTrip drives the full /v1 surface through the typed
// client against a durable in-process server.
func TestClientRoundTrip(t *testing.T) {
	srv, err := newServer(serverConfig{liveDir: t.TempDir(), workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.close() })
	ts := httptest.NewServer(srv.handler())
	t.Cleanup(ts.Close)
	c, err := client.New(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	if err := c.Healthz(ctx); err != nil {
		t.Fatal(err)
	}
	triples := rdfsum.GenerateBSBM(5).Decode()
	ing, err := c.Ingest(ctx, triples)
	if err != nil {
		t.Fatal(err)
	}
	if ing.Added != len(triples) || !ing.Durable {
		t.Errorf("ingest = %+v", ing)
	}
	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Triples == 0 || !st.Durable || st.ReadOnly {
		t.Errorf("stats = %+v", st)
	}
	sum, err := c.Summary(ctx, "weak")
	if err != nil {
		t.Fatal(err)
	}
	if sum.Kind != "weak" || sum.DataEdges == 0 {
		t.Errorf("summary = %+v", sum)
	}
	nt, err := c.SummaryNTriples(ctx, "strong")
	if err != nil {
		t.Fatal(err)
	}
	nt.Close()
	res, err := c.Query(ctx, "SELECT ?s WHERE { ?s ?p ?o . }", &client.QueryOptions{Limit: 7, Explain: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != 7 || !res.Truncated || len(res.Explain) == 0 {
		t.Errorf("query = count %d truncated %v explain %d bytes", res.Count, res.Truncated, len(res.Explain))
	}
	del, err := c.Delete(ctx, triples[:3])
	if err != nil {
		t.Fatal(err)
	}
	if del.Removed != 3 {
		t.Errorf("delete removed = %d, want 3", del.Removed)
	}
	cp, err := c.Compact(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if cp.Generation == 0 {
		t.Errorf("compact = %+v", cp)
	}
	rs, err := c.ReplicationStatus(ctx)
	if err != nil || rs.Role != "leader" || !rs.Durable {
		t.Errorf("replication = %+v (err %v)", rs, err)
	}

	// Typed errors carry the server's stable code and status.
	_, err = c.Query(ctx, "NOT SPARQL", nil)
	if !client.IsCode(err, httpapi.CodeParse) {
		t.Errorf("query parse error = %v", err)
	}
	var apiErr *client.Error
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusBadRequest {
		t.Errorf("query parse error status = %+v", apiErr)
	}
	_, err = c.Summary(ctx, "bogus")
	if !client.IsCode(err, httpapi.CodeInvalidArgument) {
		t.Errorf("summary kind error = %v", err)
	}
}
