package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rdfsum"
)

// ttlBody renders n distinct triples as a Turtle document with a prefix
// directive, exercising the non-line-delimited ingest path.
func ttlBody(start, n int) string {
	var b strings.Builder
	b.WriteString("@prefix x: <http://x/> .\n")
	for i := start; i < start+n; i++ {
		fmt.Fprintf(&b, "x:s%d x:p%d x:o%d .\n", i, i%5, i%11)
	}
	return b.String()
}

// compressed encodes body with the given codec via the public writer.
func compressed(t *testing.T, body string, c rdfsum.Compression) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := rdfsum.NewCompressionWriter(&buf, c)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write([]byte(body)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// postRaw issues a POST /triples with explicit Content-Type and
// Content-Encoding headers and returns the full response.
func postRaw(t *testing.T, url, contentType, encoding string, body []byte) (*http.Response, map[string]any) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url+"/triples", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	if encoding != "" {
		req.Header.Set("Content-Encoding", encoding)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode: %v", err)
	}
	return resp, out
}

// errCode digs the stable code out of an error envelope.
func errCode(body map[string]any) string {
	env, _ := body["error"].(map[string]any)
	code, _ := env["code"].(string)
	return code
}

// TestIngestContentNegotiation: POST /triples accepts every supported
// (serialization × encoding) combination and lands the same triples.
func TestIngestContentNegotiation(t *testing.T) {
	cases := []struct {
		name        string
		contentType string
		encoding    string
		body        func(start, n int) string
		codec       rdfsum.Compression
	}{
		{"nt-plain", "application/n-triples", "", ntBody, rdfsum.CompressionNone},
		{"nt-gzip", "application/n-triples", "gzip", ntBody, rdfsum.CompressionGzip},
		{"nt-zstd", "application/n-triples", "zstd", ntBody, rdfsum.CompressionZstd},
		{"turtle-plain", "text/turtle", "", ttlBody, rdfsum.CompressionNone},
		{"turtle-gzip", "text/turtle; charset=utf-8", "gzip", ttlBody, rdfsum.CompressionGzip},
		{"turtle-zstd", "text/turtle", "zstd", ttlBody, rdfsum.CompressionZstd},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ts, srv := liveTestServer(t, nil)
			doc := tc.body(0, 30)
			payload := []byte(doc)
			if tc.codec != rdfsum.CompressionNone {
				payload = compressed(t, doc, tc.codec)
			}
			resp, body := postRaw(t, ts.URL, tc.contentType, tc.encoding, payload)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("status = %d: %v", resp.StatusCode, body)
			}
			if body["added"].(float64) != 30 {
				t.Fatalf("added = %v, want 30", body["added"])
			}
			if got := srv.lv.Stats().Triples; got != 30 {
				t.Fatalf("store holds %d triples, want 30", got)
			}
		})
	}
}

// TestIngestUnsupportedEncoding: an unknown Content-Encoding is refused
// up front with the stable code, before any body is read.
func TestIngestUnsupportedEncoding(t *testing.T) {
	ts, _ := liveTestServer(t, nil)
	resp, body := postRaw(t, ts.URL, "application/n-triples", "br", []byte(ntBody(0, 5)))
	if resp.StatusCode != http.StatusUnsupportedMediaType {
		t.Fatalf("status = %d, want 415", resp.StatusCode)
	}
	if errCode(body) != "unsupported_encoding" {
		t.Fatalf("code = %q, want unsupported_encoding", errCode(body))
	}
}

// TestIngestUnsupportedMediaType: a Content-Type the server cannot parse
// is refused with the stable code.
func TestIngestUnsupportedMediaType(t *testing.T) {
	ts, _ := liveTestServer(t, nil)
	resp, body := postRaw(t, ts.URL, "application/rdf+xml", "", []byte(ntBody(0, 5)))
	if resp.StatusCode != http.StatusUnsupportedMediaType {
		t.Fatalf("status = %d, want 415", resp.StatusCode)
	}
	if errCode(body) != "unsupported_media_type" {
		t.Fatalf("code = %q, want unsupported_media_type", errCode(body))
	}
}

// TestIngestCorruptCompressedBody: a truncated gzip upload fails the
// whole request — nothing from the readable prefix is published.
func TestIngestCorruptCompressedBody(t *testing.T) {
	ts, srv := liveTestServer(t, nil)
	full := compressed(t, ntBody(0, 200), rdfsum.CompressionGzip)
	resp, body := postRaw(t, ts.URL, "application/n-triples", "gzip", full[:len(full)/2])
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400: %v", resp.StatusCode, body)
	}
	if errCode(body) != "parse_error" {
		t.Fatalf("code = %q, want parse_error", errCode(body))
	}
	if got := srv.lv.Stats().Triples; got != 0 {
		t.Fatalf("truncated upload published %d triples", got)
	}
}

// TestIngestBackpressure429: with a single-batch queue, concurrent
// ingests must shed load as 429 + Retry-After + "ingest_overloaded",
// and the rejection shows up in /stats.
func TestIngestBackpressure429(t *testing.T) {
	srv, err := newServer(serverConfig{liveDir: t.TempDir(), workers: 1, queueDepth: 1, queueBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.close() }) //nolint:errcheck
	ts := httptest.NewServer(srv.handler())
	t.Cleanup(ts.Close)

	var overloaded atomic.Int32
	deadline := time.Now().Add(10 * time.Second)
	for round := 0; overloaded.Load() == 0 && time.Now().Before(deadline); round++ {
		var wg sync.WaitGroup
		for i := 0; i < 8; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				resp, body := postRaw(t, ts.URL, "application/n-triples", "",
					[]byte(ntBody((round*8+i)*500, 500)))
				switch resp.StatusCode {
				case http.StatusOK:
				case http.StatusTooManyRequests:
					if errCode(body) != "ingest_overloaded" {
						t.Errorf("429 code = %q, want ingest_overloaded", errCode(body))
					}
					if resp.Header.Get("Retry-After") == "" {
						t.Error("429 without Retry-After header")
					}
					overloaded.Add(1)
				default:
					t.Errorf("status = %d: %v", resp.StatusCode, body)
				}
			}(i)
		}
		wg.Wait()
	}
	if overloaded.Load() == 0 {
		t.Fatal("never observed a 429 from a saturated single-batch queue")
	}
	var stats map[string]any
	getJSON(t, ts.URL+"/stats", &stats)
	if stats["ingest_queue_rejected"].(float64) < 1 {
		t.Fatalf("stats ingest_queue_rejected = %v, want >= 1", stats["ingest_queue_rejected"])
	}
	if stats["ingest_queue_max_depth"].(float64) != 1 {
		t.Fatalf("stats ingest_queue_max_depth = %v, want 1", stats["ingest_queue_max_depth"])
	}
}

// TestStatsAndMetricsReportQueue: queue occupancy is visible in both the
// JSON stats and the Prometheus exposition.
func TestStatsAndMetricsReportQueue(t *testing.T) {
	ts, _ := liveTestServer(t, nil)
	var stats map[string]any
	getJSON(t, ts.URL+"/stats", &stats)
	if stats["ingest_queue_max_depth"].(float64) != 256 {
		t.Fatalf("default ingest_queue_max_depth = %v, want 256", stats["ingest_queue_max_depth"])
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var b strings.Builder
	if _, err := io.Copy(&b, resp.Body); err != nil {
		t.Fatal(err)
	}
	for _, metric := range []string{
		"rdfsum_ingest_queue_depth ",
		"rdfsum_ingest_queue_max_depth ",
		"rdfsum_ingest_queue_bytes ",
		"rdfsum_ingest_queue_max_bytes ",
		"rdfsum_ingest_queue_rejected_total ",
	} {
		if !strings.Contains(b.String(), metric) {
			t.Errorf("metrics missing %q", metric)
		}
	}
}
