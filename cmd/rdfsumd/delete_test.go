package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
)

// ntLine renders the serial-i triple exactly as ntBody does.
func ntLine(i int) string {
	return fmt.Sprintf("<http://x/s%d> <http://x/p%d> <http://x/o%d> .\n", i, i%5, i%11)
}

func deleteBody(t *testing.T, url, body string) (int, map[string]any) {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/n-triples")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode: %v", err)
	}
	return resp.StatusCode, out
}

// TestDeleteTriplesEndpoint: DELETE /triples removes every stored copy of
// the posted triples, the removal is immediately invisible to queries,
// and absent triples are ignored.
func TestDeleteTriplesEndpoint(t *testing.T) {
	ts, srv := liveTestServer(t, nil)

	code, body := postBody(t, ts.URL+"/triples", ntBody(0, 25))
	if code != http.StatusOK {
		t.Fatalf("ingest status = %d: %v", code, body)
	}

	// Remove the 5 triples carrying p1 (i%5==1: serials 1,6,11,16,21).
	var del strings.Builder
	for _, i := range []int{1, 6, 11, 16, 21} {
		del.WriteString(ntLine(i))
	}
	code, body = deleteBody(t, ts.URL+"/triples", del.String())
	if code != http.StatusOK {
		t.Fatalf("delete status = %d: %v", code, body)
	}
	if body["removed"].(float64) != 5 || body["triples"].(float64) != 20 {
		t.Fatalf("delete response = %v, want removed 5, triples 20", body)
	}

	// The deletion is queryable immediately.
	code, qbody := postQuery(t, ts.URL+"/query?prune=off",
		`SELECT ?s ?o WHERE { ?s <http://x/p1> ?o }`)
	if code != http.StatusOK {
		t.Fatalf("query status = %d", code)
	}
	if qbody["count"].(float64) != 0 {
		t.Fatalf("query count after delete = %v, want 0", qbody["count"])
	}

	// Deleting absent triples is a no-op that still publishes cleanly.
	code, body = deleteBody(t, ts.URL+"/triples", del.String())
	if code != http.StatusOK || body["removed"].(float64) != 0 {
		t.Fatalf("re-delete = %d %v, want removed 0", code, body)
	}

	// Malformed N-Triples is rejected without state change.
	code, _ = deleteBody(t, ts.URL+"/triples", "nonsense\n")
	if code != http.StatusBadRequest {
		t.Fatalf("malformed delete status = %d, want 400", code)
	}
	var stats map[string]any
	getJSON(t, ts.URL+"/stats", &stats)
	if stats["triples"].(float64) != 20 {
		t.Fatalf("stats triples = %v, want 20", stats["triples"])
	}
	if stats["deleted"].(float64) != 5 {
		t.Fatalf("stats deleted = %v, want 5", stats["deleted"])
	}

	// Compaction folds the tombstones away and the data stays gone.
	code, body = postBody(t, ts.URL+"/compact", "")
	if code != http.StatusOK {
		t.Fatalf("compact status = %d: %v", code, body)
	}
	getJSON(t, ts.URL+"/stats", &stats)
	if stats["index_runs"].(float64) != 1 || stats["index_tombstones"].(float64) != 0 {
		t.Fatalf("post-compact index stats = %v, want 1 run / 0 tombstones", stats)
	}
	if got := srv.lv.Snapshot().Graph.NumEdges(); got != 20 {
		t.Fatalf("graph after compact has %d edges, want 20", got)
	}
}
