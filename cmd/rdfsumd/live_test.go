package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"rdfsum"
)

// liveTestServer serves a durable live store rooted in a temp directory.
func liveTestServer(t *testing.T, seed *rdfsum.Graph) (*httptest.Server, *server) {
	t.Helper()
	srv, err := newServer(serverConfig{liveDir: t.TempDir(), workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if seed != nil {
		if err := srv.lv.AddBatch(seed.Decode()); err != nil {
			t.Fatal(err)
		}
	}
	t.Cleanup(func() { srv.close() }) //nolint:errcheck
	ts := httptest.NewServer(srv.handler())
	t.Cleanup(ts.Close)
	return ts, srv
}

// ntBody renders n distinct triples rooted at serial start as N-Triples.
func ntBody(start, n int) string {
	var b strings.Builder
	for i := start; i < start+n; i++ {
		fmt.Fprintf(&b, "<http://x/s%d> <http://x/p%d> <http://x/o%d> .\n", i, i%5, i%11)
	}
	return b.String()
}

func postBody(t *testing.T, url, body string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Post(url, "application/n-triples", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode: %v", err)
	}
	return resp.StatusCode, out
}

func TestTriplesEndpoint(t *testing.T) {
	ts, _ := liveTestServer(t, nil)

	code, body := postBody(t, ts.URL+"/triples", ntBody(0, 25))
	if code != http.StatusOK {
		t.Fatalf("status = %d: %v", code, body)
	}
	if body["added"].(float64) != 25 || body["triples"].(float64) != 25 {
		t.Fatalf("ingest response = %v, want added/triples 25", body)
	}
	if body["durable"] != true {
		t.Fatalf("ingest response durable = %v, want true", body["durable"])
	}
	epoch := body["epoch"].(float64)

	// The batch is queryable immediately.
	code, qbody := postQuery(t, ts.URL+"/query?prune=off",
		`SELECT ?s ?o WHERE { ?s <http://x/p1> ?o }`)
	if code != http.StatusOK {
		t.Fatalf("query status = %d", code)
	}
	if qbody["count"].(float64) != 5 {
		t.Fatalf("query count = %v, want 5", qbody["count"])
	}
	if qbody["epoch"].(float64) < epoch {
		t.Fatalf("query epoch %v older than ingest epoch %v", qbody["epoch"], epoch)
	}

	// Malformed N-Triples is rejected without state change.
	code, _ = postBody(t, ts.URL+"/triples", "this is not ntriples\n")
	if code != http.StatusBadRequest {
		t.Fatalf("malformed ingest status = %d, want 400", code)
	}
	var stats map[string]any
	getJSON(t, ts.URL+"/stats", &stats)
	if stats["triples"].(float64) != 25 {
		t.Fatalf("stats triples = %v after rejected ingest, want 25", stats["triples"])
	}
	if stats["epoch"].(float64) != epoch {
		t.Fatalf("epoch moved on rejected ingest: %v -> %v", epoch, stats["epoch"])
	}
}

func TestCompactEndpoint(t *testing.T) {
	ts, srv := liveTestServer(t, nil)
	if code, _ := postBody(t, ts.URL+"/triples", ntBody(0, 40)); code != http.StatusOK {
		t.Fatal("ingest failed")
	}
	preWAL := srv.lv.Stats().WALBytes
	code, body := postBody(t, ts.URL+"/compact", "")
	if code != http.StatusOK {
		t.Fatalf("compact status = %d: %v", code, body)
	}
	if int64(body["wal_bytes"].(float64)) >= preWAL {
		t.Fatalf("compaction did not shrink the WAL: %v -> %v", preWAL, body["wal_bytes"])
	}
	if body["generation"].(float64) != 2 {
		t.Fatalf("generation = %v, want 2", body["generation"])
	}
}

func TestCompactEndpointMemoryOnly(t *testing.T) {
	ts := testServer(t) // memory-only wrapper
	resp, err := http.Post(ts.URL+"/compact", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("memory-only compact status = %d, want 409", resp.StatusCode)
	}
}

// TestLiveIngestDuringConcurrentQueries is the serving acceptance test:
// POST /triples batches land while /query, /summary and /stats traffic
// runs concurrently; every request succeeds, epochs only move forward,
// and the final triple count equals everything acknowledged. Run under
// -race (CI does) to check the memory model end to end.
func TestLiveIngestDuringConcurrentQueries(t *testing.T) {
	ts, srv := liveTestServer(t, rdfsum.GenerateBSBM(10))

	const (
		batches   = 25
		batchSize = 30
		readers   = 4
	)
	var wg sync.WaitGroup
	errc := make(chan error, readers+2)
	done := make(chan struct{})

	wg.Add(1)
	go func() { // ingest writer
		defer wg.Done()
		defer close(done)
		for i := 0; i < batches; i++ {
			code, body := postBody(t, ts.URL+"/triples", ntBody(100_000+i*batchSize, batchSize))
			if code != http.StatusOK {
				errc <- fmt.Errorf("ingest %d: status %d: %v", i, code, body)
				return
			}
			if i == batches/2 {
				if code, body := postBody(t, ts.URL+"/compact", ""); code != http.StatusOK {
					errc <- fmt.Errorf("compact: status %d: %v", code, body)
					return
				}
			}
		}
	}()

	queries := []string{
		`PREFIX bsbm: <http://bsbm.example.org/vocabulary/>
		 SELECT ?o WHERE { ?o bsbm:price ?p }`,
		`SELECT ?s ?o WHERE { ?s <http://x/p1> ?o }`,
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			lastEpoch := float64(0)
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				code, body := postQuery(t, ts.URL+"/query", queries[i%len(queries)])
				if code != http.StatusOK {
					errc <- fmt.Errorf("reader %d: query status %d: %v", r, code, body)
					return
				}
				if e := body["epoch"].(float64); e < lastEpoch {
					errc <- fmt.Errorf("reader %d: epoch went backwards %v -> %v", r, lastEpoch, e)
					return
				} else {
					lastEpoch = e
				}
				if i%5 == 0 {
					var sum map[string]any
					if resp := getJSON(t, ts.URL+"/summary?kind=weak", &sum); resp.StatusCode != http.StatusOK {
						errc <- fmt.Errorf("reader %d: summary status %d", r, resp.StatusCode)
						return
					}
					var stats map[string]any
					getJSON(t, ts.URL+"/stats", &stats)
				}
			}
		}(r)
	}

	wg.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}

	want := rdfsum.GenerateBSBM(10).NumEdges() + batches*batchSize
	if got := srv.lv.Snapshot().Graph.NumEdges(); got != want {
		t.Fatalf("final graph has %d triples, want %d", got, want)
	}
	// Post-ingest weak summary equals a batch summary of the same triples.
	sum, _, err := srv.lv.Summary(rdfsum.Weak, 0)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := rdfsum.Summarize(rdfsum.NewGraph(srv.lv.Snapshot().Graph.Decode()), rdfsum.Weak)
	if err != nil {
		t.Fatal(err)
	}
	a, b := sum.Graph.CanonicalStrings(), batch.Graph.CanonicalStrings()
	if len(a) != len(b) {
		t.Fatalf("live weak summary has %d triples, batch %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("live weak summary diverges from batch at %d: %q vs %q", i, a[i], b[i])
		}
	}
}

// TestPruningSoundUnderStaleness: a pruning gate built before an ingest
// must never prune away the ingested triples. With a large staleness
// tolerance the cached weak summary (and its gate) trails the graph; the
// server must skip the gate rather than return a wrong empty answer.
func TestPruningSoundUnderStaleness(t *testing.T) {
	srv, err := newServer(serverConfig{liveDir: t.TempDir(), workers: 1, maxStale: 1_000_000})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.close() }) //nolint:errcheck
	ts := httptest.NewServer(srv.handler())
	t.Cleanup(ts.Close)

	if code, _ := postBody(t, ts.URL+"/triples", ntBody(0, 20)); code != http.StatusOK {
		t.Fatal("ingest failed")
	}
	// Build the weak gate at the current epoch.
	q := `SELECT ?s ?o WHERE { ?s <http://fresh/p> ?o }`
	code, body := postQuery(t, ts.URL+"/query?prune=weak", q)
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if body["count"].(float64) != 0 {
		t.Fatalf("fresh property present before ingest: %v", body["count"])
	}
	if _, ok := body["prune_epoch"]; !ok {
		t.Fatal("gate at current epoch was not applied")
	}

	// Ingest a triple with a property the cached summary has never seen.
	if code, _ := postBody(t, ts.URL+"/triples",
		"<http://fresh/a> <http://fresh/p> <http://fresh/b> .\n"); code != http.StatusOK {
		t.Fatal("ingest failed")
	}
	code, body = postQuery(t, ts.URL+"/query?prune=weak", q)
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if body["count"].(float64) != 1 {
		t.Fatalf("stale gate pruned an acknowledged triple: count = %v, want 1", body["count"])
	}
	if _, ok := body["prune_epoch"]; ok {
		t.Fatal("stale gate reported as applied")
	}
}

// TestSummaryStaleness: with a staleness tolerance, cached summaries keep
// serving with their build epoch advertised; with none, they track the
// graph.
func TestSummaryStaleness(t *testing.T) {
	srv, err := newServer(serverConfig{liveDir: t.TempDir(), workers: 1, maxStale: 1000})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.close() }) //nolint:errcheck
	ts := httptest.NewServer(srv.handler())
	t.Cleanup(ts.Close)

	if code, _ := postBody(t, ts.URL+"/triples", ntBody(0, 20)); code != http.StatusOK {
		t.Fatal("ingest failed")
	}
	var first map[string]any
	getJSON(t, ts.URL+"/summary?kind=weak", &first)
	if first["stale"].(float64) != 0 {
		t.Fatalf("fresh summary stale = %v, want 0", first["stale"])
	}
	if code, _ := postBody(t, ts.URL+"/triples", ntBody(500, 20)); code != http.StatusOK {
		t.Fatal("ingest failed")
	}
	var second map[string]any
	getJSON(t, ts.URL+"/summary?kind=weak", &second)
	if second["epoch"] != first["epoch"] {
		t.Fatalf("tolerant server rebuilt: epoch %v -> %v", first["epoch"], second["epoch"])
	}
	if second["stale"].(float64) == 0 {
		t.Fatal("stale summary advertised stale = 0")
	}
}

// TestMetricsEndpoint: /metrics exposes the store gauges and per-kind
// maintenance mode in the Prometheus text format.
func TestMetricsEndpoint(t *testing.T) {
	srv, err := newServer(serverConfig{workers: 1, maintain: []rdfsum.Kind{rdfsum.Weak, rdfsum.TypedStrong}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.close() }) //nolint:errcheck
	ts := httptest.NewServer(srv.handler())
	t.Cleanup(ts.Close)

	if code, _ := postBody(t, ts.URL+"/triples", ntBody(0, 25)); code != http.StatusOK {
		t.Fatal("ingest failed")
	}
	// Materialize one maintained and one lazy kind so their epochs show.
	for _, kind := range []string{"weak", "strong"} {
		resp, err := http.Get(ts.URL + "/summary?kind=" + kind)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type %q, want text/plain", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	epoch := srv.lv.Epoch()
	for _, want := range []string{
		fmt.Sprintf("rdfsum_epoch %d", epoch),
		"rdfsum_triples 25",
		"rdfsum_durable 0",
		fmt.Sprintf(`rdfsum_summary_epoch{kind="weak",mode="maintained"} %d`, epoch),
		fmt.Sprintf(`rdfsum_summary_epoch{kind="strong",mode="lazy"} %d`, epoch),
		`rdfsum_summary_epoch{kind="typed-strong",mode="maintained"}`,
		`rdfsum_summary_lazy_builds_total{kind="weak",mode="maintained"} 0`,
		`rdfsum_summary_lazy_builds_total{kind="strong",mode="lazy"} 1`,
		`rdfsum_summary_staleness{kind="weak",mode="maintained"} 0`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics body missing %q:\n%s", want, body)
		}
	}
}

// TestParseMaintain: the -maintain flag accepts kind lists, "all" and
// "none", and rejects unknown names.
func TestParseMaintain(t *testing.T) {
	if kinds, err := parseMaintain("all"); err != nil || len(kinds) != rdfsum.NumKinds {
		t.Errorf("parseMaintain(all) = %v, %v", kinds, err)
	}
	if kinds, err := parseMaintain("none"); err != nil || kinds == nil || len(kinds) != 0 {
		t.Errorf("parseMaintain(none) = %v, %v; want empty non-nil", kinds, err)
	}
	kinds, err := parseMaintain("weak, ts")
	if err != nil || len(kinds) != 2 || kinds[0] != rdfsum.Weak || kinds[1] != rdfsum.TypedStrong {
		t.Errorf("parseMaintain(weak, ts) = %v, %v", kinds, err)
	}
	if _, err := parseMaintain("bogus"); err == nil {
		t.Error("parseMaintain accepted an unknown kind")
	}
}
