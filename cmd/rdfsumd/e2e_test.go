package main

import (
	"bufio"
	"context"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"rdfsum"
	"rdfsum/client"
)

// TestE2EReplication is the end-to-end proof of the replication design:
// two real rdfsumd processes — a durable leader and a -follow replica —
// talking over TCP. The follower must bootstrap from the leader's
// snapshot, tail its WAL through adds, deletes and a compaction, and
// serve bit-identical query and summary results at reported lag 0.
func TestE2EReplication(t *testing.T) {
	if testing.Short() {
		t.Skip("two-process e2e test; skipped in -short mode")
	}
	bin := buildRdfsumd(t)
	ctx := context.Background()

	leaderURL, leaderLogs := startDaemon(t, bin, "-live", t.TempDir(), "-addr", "127.0.0.1:0")
	lc, err := client.New(leaderURL)
	if err != nil {
		t.Fatal(err)
	}

	// Seed the leader before the follower exists, so the follower's
	// bootstrap has a WAL prefix to replay.
	triples := rdfsum.GenerateBSBM(15).Decode()
	if _, err := lc.Ingest(ctx, triples[:200]); err != nil {
		t.Fatal(err)
	}

	followerURL, followerLogs := startDaemon(t, bin, "-follow", leaderURL, "-addr", "127.0.0.1:0")
	fc, err := client.New(followerURL)
	if err != nil {
		t.Fatal(err)
	}
	awaitLag0(t, fc)
	assertSameResults(t, lc, fc)

	// Live tail: more adds and a delete.
	if _, err := lc.Ingest(ctx, triples[200:]); err != nil {
		t.Fatal(err)
	}
	if _, err := lc.Delete(ctx, triples[50:120]); err != nil {
		t.Fatal(err)
	}
	awaitLag0(t, fc)
	assertSameResults(t, lc, fc)

	// Leader compaction prunes the tailed generation: the follower must
	// re-bootstrap and keep converging.
	if _, err := lc.Compact(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := lc.Ingest(ctx, triples[50:120]); err != nil {
		t.Fatal(err)
	}
	awaitLag0(t, fc)
	assertSameResults(t, lc, fc)

	rs, err := fc.ReplicationStatus(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Role != "follower" || rs.LagBytes != 0 || rs.LagRecords != 0 || rs.LagEpochs != 0 {
		t.Errorf("final follower status = %+v", rs)
	}
	if rs.Bootstraps < 2 {
		t.Errorf("bootstraps = %d, want >= 2 (one initial + one after compaction)", rs.Bootstraps)
	}

	// Request-ID correlation across processes: the follower stamps each
	// bootstrap→tail session with one ID and sends it on every leader
	// request, so the same ID must appear in both structured logs.
	assertSharedRequestID(t, leaderLogs, followerLogs)
}

// requestIDRE matches the middleware-generated 16-hex request IDs in
// slog text output.
var requestIDRE = regexp.MustCompile(`request_id=([0-9a-f]{16})`)

// assertSharedRequestID polls both process logs for a follower request
// ID that also shows up in the leader's request log.
func assertSharedRequestID(t *testing.T, leaderLogs, followerLogs *logBuffer) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		leader := leaderLogs.String()
		for _, m := range requestIDRE.FindAllStringSubmatch(followerLogs.String(), -1) {
			if strings.Contains(leader, m[1]) {
				return
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Errorf("no follower request_id found in the leader log\nleader:\n%s\nfollower:\n%s",
		leaderLogs.String(), followerLogs.String())
}

// logBuffer accumulates a child process's stderr lines for assertions.
type logBuffer struct {
	mu sync.Mutex
	b  strings.Builder
}

func (l *logBuffer) add(line string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.b.WriteString(line)
	l.b.WriteByte('\n')
}

func (l *logBuffer) String() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.String()
}

// buildRdfsumd compiles this package's binary once into the test's temp
// dir.
func buildRdfsumd(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "rdfsumd")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	cmd.Env = os.Environ()
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// startDaemon launches an rdfsumd process and returns its base URL —
// parsed from the "listening on" startup line, tolerating the slog text
// handler's quoting — plus the accumulating capture of its stderr.
func startDaemon(t *testing.T, bin string, args ...string) (string, *logBuffer) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill() //nolint:errcheck
		cmd.Wait()         //nolint:errcheck
	})
	logs := &logBuffer{}
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			logs.add(line)
			if _, after, ok := strings.Cut(line, "listening on "); ok {
				select {
				case addrCh <- strings.Trim(after, "\" "):
				default:
				}
			}
		}
	}()
	select {
	case addr := <-addrCh:
		return "http://" + addr, logs
	case <-time.After(30 * time.Second):
		t.Fatalf("rdfsumd %v did not report its listen address", args)
		return "", nil
	}
}

// awaitLag0 polls the follower until it reports a fully caught-up tail.
func awaitLag0(t *testing.T, fc *client.Client) {
	t.Helper()
	ctx := context.Background()
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		rs, err := fc.ReplicationStatus(ctx)
		if err == nil && rs.State == "tailing" && rs.LagBytes == 0 && rs.LagEpochs == 0 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	rs, err := fc.ReplicationStatus(ctx)
	t.Fatalf("follower never reached lag 0: %+v (err %v)", rs, err)
}

// assertSameResults compares query rows, triple counts and weak-summary
// statistics across the two processes.
func assertSameResults(t *testing.T, lc, fc *client.Client) {
	t.Helper()
	ctx := context.Background()
	const q = "SELECT ?s ?o WHERE { ?s ?p ?o . }"
	if lrows, frows := queryRows(t, lc, q), queryRows(t, fc, q); !equalStrings(lrows, frows) {
		t.Fatalf("query rows diverge: leader %d, follower %d", len(lrows), len(frows))
	}
	lst, err := lc.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	fst, err := fc.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if lst.Triples != fst.Triples || lst.DataNodes != fst.DataNodes {
		t.Fatalf("stats diverge: leader %+v follower %+v", lst, fst)
	}
	lsum, err := lc.Summary(ctx, "weak")
	if err != nil {
		t.Fatal(err)
	}
	fsum, err := fc.Summary(ctx, "weak")
	if err != nil {
		t.Fatal(err)
	}
	if lsum.DataNodes != fsum.DataNodes || lsum.DataEdges != fsum.DataEdges ||
		lsum.AllNodes != fsum.AllNodes || lsum.AllEdges != fsum.AllEdges {
		t.Fatalf("weak summaries diverge: leader %+v follower %+v", lsum, fsum)
	}
}
