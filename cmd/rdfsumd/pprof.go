package main

import (
	"net/http"
	"net/http/pprof"
)

// mountPprof registers the pprof handlers on a private mux — the
// explicit registrations, not the net/http/pprof DefaultServeMux side
// effect, so profiling is only reachable through -debug-addr.
func mountPprof(m *http.ServeMux) {
	m.HandleFunc("/debug/pprof/", pprof.Index)
	m.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	m.HandleFunc("/debug/pprof/profile", pprof.Profile)
	m.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	m.HandleFunc("/debug/pprof/trace", pprof.Trace)
}
