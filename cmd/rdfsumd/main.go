// Command rdfsumd serves an RDF graph and its summaries over HTTP — the
// paper's "first-level user interface" use case as a small JSON service,
// extended with live updates (graphs mutate while being served) and
// WAL-shipping read replicas.
//
//	rdfsumd -in data.nt -addr :8176             # read-mostly, memory-only
//	rdfsumd -live ./store -addr :8176           # durable mutable store
//	rdfsumd -live ./store -in seed.nt           # seed a fresh store
//	rdfsumd -follow http://leader:8176          # read replica of a leader
//
// The API is versioned under /v1/ (see docs/http-api.md); the legacy
// unversioned paths still answer, with a Deprecation header pointing at
// their successor. Every error is the JSON envelope
// {"error":{"code":...,"message":...}}.
//
// Endpoints:
//
//	GET  /v1/healthz           liveness
//	GET  /v1/metrics           plain-text gauges: epoch, triple/WAL counts,
//	                           per-kind summary staleness, replication lag
//	GET  /v1/stats             graph size statistics + epoch/WAL counters
//	GET  /v1/summary?kind=weak summary statistics (+N-Triples or DOT body
//	                           with ?format=ntriples | dot); epoch-tagged
//	GET  /v1/profile           entity-kind profile (typed-weak based)
//	POST /v1/triples           triples body appended as one acknowledged
//	                           batch (WAL-durable with -live); N-Triples or
//	                           text/turtle, Content-Encoding gzip|zstd
//	                           accepted; a full ingest queue answers 429 +
//	                           Retry-After with code "ingest_overloaded"
//	DELETE /v1/triples         triples body removed as one acknowledged
//	                           batch (every stored copy; WAL-durable)
//	POST /v1/compact           fold the WAL into a snapshot generation
//	                           and the tiered index into a single run
//	POST /v1/query             SPARQL BGP text in the body;
//	                           ?saturate=true evaluates against G∞,
//	                           ?limit=N caps rows (default 10000),
//	                           ?explain=true reports the join order,
//	                           ?prune=weak|strong|...|off selects the
//	                           summary-pruning gate (default weak)
//	GET  /v1/replication       replication role; on followers the catch-up
//	                           state and lag, on leaders the WAL extent
//	GET  /v1/repl/{manifest,snapshot,wal}
//	                           the WAL-shipping wire protocol followers
//	                           consume (durable stores only)
//
// Writes and reads are concurrent: queries run against immutable epoch
// snapshots while ingest proceeds. Summary-derived artifacts are cached
// per epoch; -max-stale N lets them serve up to N epochs behind (each
// response reports the epoch it reflects). A follower rejects the
// mutating routes with the "read_only" error code and converges on its
// leader's state, re-bootstrapping automatically when the leader's
// compaction prunes the generation it was tailing.
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"rdfsum"
	"rdfsum/internal/obs"
)

func main() {
	in := flag.String("in", "", "input graph (.nt, .ttl or snapshot); with -live, seeds a fresh store")
	liveDir := flag.String("live", "", "durable live-store directory (WAL + snapshots); empty = memory-only")
	follow := flag.String("follow", "", "leader base URL (e.g. http://leader:8176); serve as a read replica")
	addr := flag.String("addr", ":8176", "listen address")
	workers := flag.Int("workers", 0, "N-Triples load workers (0 = all CPUs, 1 = sequential)")
	maxStale := flag.Uint64("max-stale", 0, "epochs a cached summary/pruner may trail the graph before rebuild")
	noSync := flag.Bool("no-fsync", false, "skip the per-batch fsync (faster ingest, weaker durability)")
	maintain := flag.String("maintain", "weak",
		"summary kinds kept incrementally current during ingest: a comma list of kinds, \"all\", or \"none\"")
	indexFanout := flag.Int("index-fanout", 0,
		"tiered-index fold width: delta runs merge once this many share a level (0 = default 8)")
	indexSpill := flag.Int64("index-spill-bytes", 0,
		"spill folded index runs at least this many bytes to mapped files under <live>/spill (0 = all in memory)")
	verifySnap := flag.Bool("verify-snapshot", false,
		"eagerly CRC-check every snapshot section at open instead of lazily on first touch")
	queueDepth := flag.Int("ingest-queue-depth", 0,
		"max batches buffered in the ingest queue before 429 (0 = default 256)")
	queueBytes := flag.Int64("ingest-queue-bytes", 0,
		"max decoded payload bytes buffered in the ingest queue before 429 (0 = default 256 MiB)")
	logLevel := flag.String("log-level", "info", "log verbosity: debug, info, warn or error")
	logFormat := flag.String("log-format", "text", "structured log encoding: text or json")
	slowQueryMS := flag.Int64("slow-query-ms", 0,
		"log queries slower than this many milliseconds with their plan (0 = disabled)")
	debugAddr := flag.String("debug-addr", "",
		"private listen address for net/http/pprof and /debug/vars (empty = disabled; never on the public mux)")
	flag.Parse()
	if *in == "" && *liveDir == "" && *follow == "" {
		fmt.Fprintln(os.Stderr, "rdfsumd: need -in, -live or -follow")
		os.Exit(2)
	}
	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rdfsumd: -log-level:", err)
		os.Exit(2)
	}
	logger, err := obs.NewLogger(os.Stderr, level, *logFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rdfsumd: -log-format:", err)
		os.Exit(2)
	}
	slog.SetDefault(logger)
	maintained, err := parseMaintain(*maintain)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rdfsumd:", err)
		os.Exit(2)
	}
	srv, err := newServer(serverConfig{
		in:          *in,
		liveDir:     *liveDir,
		follow:      *follow,
		workers:     *workers,
		maxStale:    *maxStale,
		noSync:      *noSync,
		maintain:    maintained,
		indexFanout: *indexFanout,
		indexSpill:  *indexSpill,
		verifySnap:  *verifySnap,
		queueDepth:  *queueDepth,
		queueBytes:  *queueBytes,
		logger:      logger,
		slowQuery:   time.Duration(*slowQueryMS) * time.Millisecond,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "rdfsumd:", err)
		os.Exit(1)
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rdfsumd:", err)
		os.Exit(1)
	}
	if *debugAddr != "" {
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rdfsumd: -debug-addr:", err)
			os.Exit(1)
		}
		logger.Info("debug server listening (pprof + /debug/vars)", "addr", dln.Addr().String())
		go func() {
			logger.Error("debug server exited", "error", http.Serve(dln, srv.debugHandler()))
		}()
	}
	lv, _ := srv.state()
	st := lv.Stats()
	mode := "memory-only"
	switch {
	case *follow != "":
		mode = fmt.Sprintf("read replica of %s", *follow)
	case st.Durable:
		mode = fmt.Sprintf("durable at %s (gen %d)", *liveDir, st.Gen)
	}
	// The exact "listening on" phrasing is load-bearing: the e2e harness
	// parses the bound address from it (tolerating the slog text
	// handler's quoting).
	logger.Info(fmt.Sprintf("rdfsumd: listening on %s", ln.Addr()))
	logger.Info(fmt.Sprintf("rdfsumd: serving %d triples, %s, epoch %d, maintaining %s",
		st.Triples, mode, st.Epoch, maintainNames(lv)))
	if err := http.Serve(ln, srv.handler()); err != nil {
		logger.Error("server exited", "error", err)
		os.Exit(1)
	}
}

// parseMaintain resolves the -maintain flag: "all" maintains every kind,
// "none" disables maintenance, and a comma list names individual kinds.
func parseMaintain(s string) ([]rdfsum.Kind, error) {
	switch strings.TrimSpace(s) {
	case "all":
		return rdfsum.Kinds, nil
	case "none":
		return []rdfsum.Kind{}, nil
	}
	var kinds []rdfsum.Kind
	for _, name := range strings.Split(s, ",") {
		kind, err := rdfsum.ParseKind(strings.TrimSpace(name))
		if err != nil {
			return nil, fmt.Errorf("-maintain: %w (or \"all\" / \"none\")", err)
		}
		kinds = append(kinds, kind)
	}
	return kinds, nil
}

// maintainNames renders the maintained kinds for the startup log.
func maintainNames(lv *rdfsum.Live) string {
	kinds := lv.MaintainedKinds()
	if len(kinds) == 0 {
		return "no kinds (all lazy)"
	}
	names := make([]string, len(kinds))
	for i, k := range kinds {
		names[i] = k.String()
	}
	return strings.Join(names, ",")
}
