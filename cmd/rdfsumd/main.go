// Command rdfsumd serves a loaded RDF graph and its summaries over HTTP —
// the paper's "first-level user interface" use case as a small JSON
// service.
//
//	rdfsumd -in data.nt -addr :8176
//
// Endpoints:
//
//	GET  /healthz              liveness
//	GET  /stats                graph size statistics
//	GET  /summary?kind=weak    summary statistics (+N-Triples or DOT body
//	                           with ?format=ntriples | dot)
//	GET  /profile              entity-kind profile (typed-weak based)
//	POST /query                SPARQL BGP text in the body;
//	                           ?saturate=true evaluates against G∞,
//	                           ?limit=N caps rows (default 10000),
//	                           ?explain=true reports the join order,
//	                           ?prune=weak|strong|...|off selects the
//	                           summary-pruning gate (default weak)
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
)

func main() {
	in := flag.String("in", "", "input graph (.nt, .ttl or snapshot)")
	addr := flag.String("addr", ":8176", "listen address")
	workers := flag.Int("workers", 0, "N-Triples load workers (0 = all CPUs, 1 = sequential)")
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "rdfsumd: missing -in file")
		os.Exit(2)
	}
	srv, err := newServer(*in, *workers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rdfsumd:", err)
		os.Exit(1)
	}
	log.Printf("rdfsumd: serving %s (%d triples) on %s", *in, srv.graph.NumEdges(), *addr)
	log.Fatal(http.ListenAndServe(*addr, srv.handler()))
}
