package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"

	"rdfsum"
	"rdfsum/internal/profile"
	"rdfsum/internal/query"
	"rdfsum/internal/store"
)

// server holds the loaded graph and caches derived artifacts.
type server struct {
	graph *rdfsum.Graph

	mu        sync.Mutex
	summaries map[rdfsum.Kind]*rdfsum.Summary
	satOnce   sync.Once
	saturated *rdfsum.Graph
	satIx     *store.Index
	plainIx   *store.Index
	plainOnce sync.Once
}

// newServer loads the graph at path. N-Triples inputs go through the
// parallel pipeline with the given worker count (0 = all CPUs, 1 =
// sequential).
func newServer(path string, workers int) (*server, error) {
	var g *rdfsum.Graph
	var err error
	switch {
	case strings.HasSuffix(path, ".nt"):
		g, err = rdfsum.LoadNTriplesFileParallel(path, &rdfsum.LoadOptions{Workers: workers})
	case strings.HasSuffix(path, ".ttl"):
		g, err = rdfsum.LoadTurtleFile(path)
	default:
		g, err = rdfsum.LoadSnapshot(path)
	}
	if err != nil {
		return nil, err
	}
	return newServerFromGraph(g), nil
}

func newServerFromGraph(g *rdfsum.Graph) *server {
	return &server{graph: g, summaries: map[rdfsum.Kind]*rdfsum.Summary{}}
}

func (s *server) mux() *http.ServeMux {
	m := http.NewServeMux()
	m.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		io.WriteString(w, "ok\n") //nolint:errcheck
	})
	m.HandleFunc("GET /stats", s.handleStats)
	m.HandleFunc("GET /summary", s.handleSummary)
	m.HandleFunc("GET /profile", s.handleProfile)
	m.HandleFunc("POST /query", s.handleQuery)
	return m
}

// summary builds (or returns the cached) summary of one kind.
func (s *server) summary(kind rdfsum.Kind) (*rdfsum.Summary, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if sum, ok := s.summaries[kind]; ok {
		return sum, nil
	}
	sum, err := rdfsum.Summarize(s.graph, kind)
	if err != nil {
		return nil, err
	}
	s.summaries[kind] = sum
	return sum, nil
}

func (s *server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, map[string]any{
		"triples":        s.graph.NumEdges(),
		"data_triples":   len(s.graph.Data),
		"type_triples":   len(s.graph.Types),
		"schema_triples": len(s.graph.Schema),
		"data_nodes":     len(s.graph.DataNodes()),
		"class_nodes":    len(s.graph.ClassNodes()),
		"properties":     len(s.graph.DistinctDataProperties()),
	})
}

func (s *server) handleSummary(w http.ResponseWriter, r *http.Request) {
	kindName := r.URL.Query().Get("kind")
	if kindName == "" {
		kindName = "weak"
	}
	kind, err := rdfsum.ParseKind(kindName)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	sum, err := s.summary(kind)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	switch r.URL.Query().Get("format") {
	case "", "json":
		writeJSON(w, map[string]any{
			"kind":        kind.String(),
			"data_nodes":  sum.Stats.DataNodes,
			"all_nodes":   sum.Stats.AllNodes,
			"data_edges":  sum.Stats.DataEdges,
			"all_edges":   sum.Stats.AllEdges,
			"compression": sum.Stats.CompressionRatio(),
		})
	case "ntriples":
		w.Header().Set("Content-Type", "application/n-triples")
		if err := rdfsum.WriteNTriples(w, sum.Graph.Decode()); err != nil {
			httpError(w, http.StatusInternalServerError, err)
		}
	case "dot":
		w.Header().Set("Content-Type", "text/vnd.graphviz")
		if err := rdfsum.ExportDOT(w, sum.Graph, kind.String()+" summary"); err != nil {
			httpError(w, http.StatusInternalServerError, err)
		}
	default:
		httpError(w, http.StatusBadRequest,
			fmt.Errorf("unknown format %q (want json, ntriples or dot)", r.URL.Query().Get("format")))
	}
}

func (s *server) handleProfile(w http.ResponseWriter, r *http.Request) {
	sum, err := s.summary(rdfsum.TypedWeak)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	p := profile.Build(sum)
	type kindJSON struct {
		Label         string   `json:"label"`
		Instances     int      `json:"instances"`
		Attributes    []string `json:"attributes,omitempty"`
		Relationships []string `json:"relationships,omitempty"`
	}
	out := make([]kindJSON, 0, len(p.Kinds))
	for _, k := range p.Kinds {
		out = append(out, kindJSON{k.Label(), k.Instances, k.Attributes, k.Relationships})
	}
	writeJSON(w, map[string]any{
		"triples": p.InputTriples,
		"nodes":   p.InputNodes,
		"kinds":   out,
	})
}

func (s *server) handleQuery(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	q, err := rdfsum.ParseQuery(string(body))
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	g, ix := s.graph, s.plainIndex()
	if r.URL.Query().Get("saturate") == "true" {
		g, ix = s.saturatedIndex()
	}
	res, err := query.Eval(g, ix, q, &query.EvalOptions{Limit: 10_000})
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	rows := make([][]string, 0, len(res.Rows))
	for _, row := range res.Rows {
		cells := make([]string, len(row))
		for i, term := range row {
			cells[i] = term.String()
		}
		rows = append(rows, cells)
	}
	writeJSON(w, map[string]any{"vars": res.Vars, "rows": rows, "count": len(rows)})
}

func (s *server) plainIndex() *store.Index {
	s.plainOnce.Do(func() { s.plainIx = rdfsum.NewIndex(s.graph) })
	return s.plainIx
}

func (s *server) saturatedIndex() (*rdfsum.Graph, *store.Index) {
	s.satOnce.Do(func() {
		s.saturated = rdfsum.Saturate(s.graph)
		s.satIx = rdfsum.NewIndex(s.saturated)
	})
	return s.saturated, s.satIx
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // headers already sent
}

func httpError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()}) //nolint:errcheck
}
