package main

import (
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"rdfsum"
	"rdfsum/internal/profile"
	"rdfsum/internal/store"
)

// Query row limits: the default when the client sends none, and the hard
// cap a client-supplied ?limit may not exceed.
const (
	defaultQueryLimit = 10_000
	maxQueryLimit     = 100_000
)

// summaryCell is the singleflight slot for one summary kind: the first
// request builds, concurrent requests for the same kind wait on the Once,
// and requests for *other* kinds proceed independently — a slow Strong
// build no longer blocks Weak-pruned queries.
type summaryCell struct {
	once sync.Once
	sum  *rdfsum.Summary
	err  error
}

// prunerCell singleflights the saturated-summary emptiness oracle of one
// kind (built on top of that kind's summaryCell).
type prunerCell struct {
	once   sync.Once
	pruner *rdfsum.QueryPruner
	err    error
}

// server holds the loaded graph and caches derived artifacts.
type server struct {
	graph *rdfsum.Graph

	mu        sync.Mutex // guards the two cell maps (not the builds)
	summaries map[rdfsum.Kind]*summaryCell
	pruners   map[rdfsum.Kind]*prunerCell

	satOnce   sync.Once
	saturated *rdfsum.Graph
	satIx     *store.Index
	plainIx   *store.Index
	plainOnce sync.Once

	weightsOnce sync.Once
	weights     *rdfsum.Weights
}

// newServer loads the graph at path. N-Triples inputs go through the
// parallel pipeline with the given worker count (0 = all CPUs, 1 =
// sequential).
func newServer(path string, workers int) (*server, error) {
	var g *rdfsum.Graph
	var err error
	switch {
	case strings.HasSuffix(path, ".nt"):
		g, err = rdfsum.LoadNTriplesFileParallel(path, &rdfsum.LoadOptions{Workers: workers})
	case strings.HasSuffix(path, ".ttl"):
		g, err = rdfsum.LoadTurtleFile(path)
	default:
		g, err = rdfsum.LoadSnapshot(path)
	}
	if err != nil {
		return nil, err
	}
	return newServerFromGraph(g), nil
}

func newServerFromGraph(g *rdfsum.Graph) *server {
	return &server{
		graph:     g,
		summaries: map[rdfsum.Kind]*summaryCell{},
		pruners:   map[rdfsum.Kind]*prunerCell{},
	}
}

func (s *server) mux() *http.ServeMux {
	m := http.NewServeMux()
	m.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		io.WriteString(w, "ok\n") //nolint:errcheck
	})
	m.HandleFunc("GET /stats", s.handleStats)
	m.HandleFunc("GET /summary", s.handleSummary)
	m.HandleFunc("GET /profile", s.handleProfile)
	m.HandleFunc("POST /query", s.handleQuery)
	return m
}

// handler wraps the mux with per-request logging (method, path, status,
// duration) for serving observability.
func (s *server) handler() http.Handler {
	return logRequests(s.mux())
}

// statusWriter records the response code for the request log.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

func logRequests(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		h.ServeHTTP(sw, r)
		log.Printf("%s %s %d %s", r.Method, r.URL.Path, sw.code,
			time.Since(start).Round(time.Microsecond))
	})
}

// summary builds (or returns the cached) summary of one kind. Builds of
// different kinds run concurrently; duplicate requests for one kind
// coalesce onto a single build.
func (s *server) summary(kind rdfsum.Kind) (*rdfsum.Summary, error) {
	s.mu.Lock()
	cell, ok := s.summaries[kind]
	if !ok {
		cell = &summaryCell{}
		s.summaries[kind] = cell
	}
	s.mu.Unlock()
	cell.once.Do(func() {
		cell.sum, cell.err = rdfsum.Summarize(s.graph, kind)
	})
	return cell.sum, cell.err
}

// pruner builds (or returns the cached) summary-pruning gate of one kind.
func (s *server) pruner(kind rdfsum.Kind) (*rdfsum.QueryPruner, error) {
	s.mu.Lock()
	cell, ok := s.pruners[kind]
	if !ok {
		cell = &prunerCell{}
		s.pruners[kind] = cell
	}
	s.mu.Unlock()
	cell.once.Do(func() {
		sum, err := s.summary(kind)
		if err != nil {
			cell.err = err
			return
		}
		cell.pruner = rdfsum.NewQueryPruner(sum)
	})
	return cell.pruner, cell.err
}

// planStats returns the weak summary's quotient-map cardinalities, the
// statistics behind the planner's join ordering. Nil (with a logged
// warning) when the weak summary cannot be built.
func (s *server) planStats() *rdfsum.Weights {
	s.weightsOnce.Do(func() {
		sum, err := s.summary(rdfsum.Weak)
		if err != nil {
			log.Printf("rdfsumd: planner stats unavailable: %v", err)
			return
		}
		s.weights = sum.ComputeWeights()
	})
	return s.weights
}

func (s *server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, map[string]any{
		"triples":        s.graph.NumEdges(),
		"data_triples":   len(s.graph.Data),
		"type_triples":   len(s.graph.Types),
		"schema_triples": len(s.graph.Schema),
		"data_nodes":     len(s.graph.DataNodes()),
		"class_nodes":    len(s.graph.ClassNodes()),
		"properties":     len(s.graph.DistinctDataProperties()),
	})
}

func (s *server) handleSummary(w http.ResponseWriter, r *http.Request) {
	kindName := r.URL.Query().Get("kind")
	if kindName == "" {
		kindName = "weak"
	}
	kind, err := rdfsum.ParseKind(kindName)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	sum, err := s.summary(kind)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	switch r.URL.Query().Get("format") {
	case "", "json":
		writeJSON(w, map[string]any{
			"kind":        kind.String(),
			"data_nodes":  sum.Stats.DataNodes,
			"all_nodes":   sum.Stats.AllNodes,
			"data_edges":  sum.Stats.DataEdges,
			"all_edges":   sum.Stats.AllEdges,
			"compression": sum.Stats.CompressionRatio(),
		})
	case "ntriples":
		w.Header().Set("Content-Type", "application/n-triples")
		if err := rdfsum.WriteNTriples(w, sum.Graph.Decode()); err != nil {
			httpError(w, http.StatusInternalServerError, err)
		}
	case "dot":
		w.Header().Set("Content-Type", "text/vnd.graphviz")
		if err := rdfsum.ExportDOT(w, sum.Graph, kind.String()+" summary"); err != nil {
			httpError(w, http.StatusInternalServerError, err)
		}
	default:
		httpError(w, http.StatusBadRequest,
			fmt.Errorf("unknown format %q (want json, ntriples or dot)", r.URL.Query().Get("format")))
	}
}

func (s *server) handleProfile(w http.ResponseWriter, r *http.Request) {
	sum, err := s.summary(rdfsum.TypedWeak)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	p := profile.Build(sum)
	type kindJSON struct {
		Label         string   `json:"label"`
		Instances     int      `json:"instances"`
		Attributes    []string `json:"attributes,omitempty"`
		Relationships []string `json:"relationships,omitempty"`
	}
	out := make([]kindJSON, 0, len(p.Kinds))
	for _, k := range p.Kinds {
		out = append(out, kindJSON{k.Label(), k.Instances, k.Attributes, k.Relationships})
	}
	writeJSON(w, map[string]any{
		"triples": p.InputTriples,
		"nodes":   p.InputNodes,
		"kinds":   out,
	})
}

// queryLimit validates the optional ?limit parameter: a positive integer
// capped at maxQueryLimit, defaulting to defaultQueryLimit.
func queryLimit(r *http.Request) (int, error) {
	raw := r.URL.Query().Get("limit")
	if raw == "" {
		return defaultQueryLimit, nil
	}
	n, err := strconv.Atoi(raw)
	if err != nil || n <= 0 {
		return 0, fmt.Errorf("invalid limit %q (want a positive integer)", raw)
	}
	if n > maxQueryLimit {
		n = maxQueryLimit
	}
	return n, nil
}

// handleQuery evaluates a SPARQL BGP posted in the body.
//
// Parameters: ?saturate=true evaluates against G∞; ?limit=N caps the rows
// (default 10000, capped at 100000); ?explain=true adds the join-order
// report; ?prune selects the summary kind gating provably-empty queries
// (default weak, "off" disables). The response reports whether the row
// set was truncated by the limit.
func (s *server) handleQuery(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	q, err := rdfsum.ParseQuery(string(body))
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	limit, err := queryLimit(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	opts := &rdfsum.QueryOptions{
		Limit:   limit,
		Explain: r.URL.Query().Get("explain") == "true",
	}
	// Guarded assignment: a nil *Weights stored directly into the
	// interface field would be a non-nil PlanStats and panic the planner.
	if w := s.planStats(); w != nil {
		opts.Stats = w
	}
	pruneName := r.URL.Query().Get("prune")
	if pruneName == "" {
		pruneName = "weak"
	}
	if pruneName != "off" {
		kind, err := rdfsum.ParseKind(pruneName)
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		pruner, err := s.pruner(kind)
		if err != nil {
			httpError(w, http.StatusInternalServerError, err)
			return
		}
		opts.Pruner = pruner
	}
	g, ix := s.graph, s.plainIndex()
	if r.URL.Query().Get("saturate") == "true" {
		g, ix = s.saturatedIndex()
	}
	res, err := rdfsum.EvalQueryWithOptions(g, ix, q, opts)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	rows := make([][]string, 0, len(res.Rows))
	for _, row := range res.Rows {
		cells := make([]string, len(row))
		for i, term := range row {
			cells[i] = term.String()
		}
		rows = append(rows, cells)
	}
	payload := map[string]any{
		"vars":      res.Vars,
		"rows":      rows,
		"count":     len(rows),
		"truncated": res.Truncated,
	}
	if res.Explain != nil {
		payload["explain"] = res.Explain
	}
	writeJSON(w, payload)
}

func (s *server) plainIndex() *store.Index {
	s.plainOnce.Do(func() { s.plainIx = rdfsum.NewIndex(s.graph) })
	return s.plainIx
}

func (s *server) saturatedIndex() (*rdfsum.Graph, *store.Index) {
	s.satOnce.Do(func() {
		s.saturated = rdfsum.Saturate(s.graph)
		s.satIx = rdfsum.NewIndex(s.saturated)
	})
	return s.saturated, s.satIx
}

// writeJSON encodes v; headers are already sent by the time an encode
// error can occur, so it is logged rather than silently dropped.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		log.Printf("rdfsumd: response encode: %v", err)
	}
}

func httpError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if encErr := json.NewEncoder(w).Encode(map[string]string{"error": err.Error()}); encErr != nil {
		log.Printf("rdfsumd: error-response encode: %v", encErr)
	}
}
