package main

import (
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"rdfsum"
	"rdfsum/internal/profile"
	"rdfsum/internal/store"
)

// Query row limits: the default when the client sends none, and the hard
// cap a client-supplied ?limit may not exceed.
const (
	defaultQueryLimit = 10_000
	maxQueryLimit     = 100_000
)

// maxIngestBody bounds a POST /triples body.
const maxIngestBody = 64 << 20

// prunerCell caches the saturated-summary emptiness oracle of one kind,
// tagged with the epoch of the summary it was built from. The mutex
// singleflights rebuilds of that kind; other kinds proceed independently.
type prunerCell struct {
	mu     sync.Mutex
	epoch  uint64
	pruner *rdfsum.QueryPruner
}

// server fronts a live graph store. All reads go through the store's
// published epoch snapshots, so they are consistent and wait-free under
// concurrent ingest; derived artifacts (summaries, pruners, planner
// weights, the saturated graph) are cached per epoch and rebuilt lazily
// when stale beyond the configured tolerance.
type server struct {
	live *rdfsum.Live
	// maxStale is how many epochs behind a cached summary-derived
	// artifact may serve before it is rebuilt (0 = always rebuild when
	// stale). Staleness is reported to clients either way.
	maxStale uint64

	pruners [rdfsum.NumKinds]prunerCell // indexed by rdfsum.Kind

	satMu    sync.Mutex
	satEpoch uint64
	satGraph *rdfsum.Graph
	satIx    *store.Index

	weightsMu    sync.Mutex
	weightsEpoch uint64
	weights      *rdfsum.Weights
}

// newServer builds the serving state. When liveDir is set the store is
// durable (WAL + snapshots in that directory) and path — if any — seeds a
// fresh store; otherwise path is loaded into a memory-only live store.
// N-Triples inputs go through the parallel pipeline with the given worker
// count (0 = all CPUs, 1 = sequential). maintain lists the summary kinds
// the quotient engine keeps incrementally current (nil = weak only);
// indexFanout tunes the tiered index's fold width (0 = default).
func newServer(path, liveDir string, workers int, maxStale uint64, noSync bool, maintain []rdfsum.Kind, indexFanout int) (*server, error) {
	if path != "" && liveDir != "" && rdfsum.LiveHasState(liveDir) {
		// A seed only applies to a fresh store; skip the (possibly huge)
		// load instead of parsing and silently discarding it.
		log.Printf("rdfsumd: -in %s ignored: live store %s already has state", path, liveDir)
		path = ""
	}
	var seed *rdfsum.Graph
	if path != "" {
		var err error
		switch {
		case strings.HasSuffix(path, ".nt"):
			seed, err = rdfsum.LoadNTriplesFileParallel(path, &rdfsum.LoadOptions{Workers: workers})
		case strings.HasSuffix(path, ".ttl"):
			seed, err = rdfsum.LoadTurtleFile(path)
		default:
			seed, err = rdfsum.LoadSnapshot(path)
		}
		if err != nil {
			return nil, err
		}
	}
	opts := &rdfsum.LiveOptions{NoSync: noSync, Seed: seed, Maintain: maintain, IndexFanout: indexFanout}
	var lv *rdfsum.Live
	if liveDir != "" {
		var err error
		lv, err = rdfsum.OpenLive(liveDir, opts)
		if err != nil {
			return nil, err
		}
		if lv.RecoveredTorn {
			log.Printf("rdfsumd: WAL recovery dropped a torn tail (crash mid-append); acknowledged batches are intact")
		}
	} else {
		lv = rdfsum.NewLiveWithOptions(seed, opts)
	}
	return &server{live: lv, maxStale: maxStale}, nil
}

// newServerFromGraph wraps an in-memory graph; used by tests and
// embedders.
func newServerFromGraph(g *rdfsum.Graph) *server {
	return &server{live: rdfsum.NewLive(g)}
}

func (s *server) mux() *http.ServeMux {
	m := http.NewServeMux()
	m.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		io.WriteString(w, "ok\n") //nolint:errcheck
	})
	m.HandleFunc("GET /metrics", s.handleMetrics)
	m.HandleFunc("GET /stats", s.handleStats)
	m.HandleFunc("GET /summary", s.handleSummary)
	m.HandleFunc("GET /profile", s.handleProfile)
	m.HandleFunc("POST /query", s.handleQuery)
	m.HandleFunc("POST /triples", s.handleTriples)
	m.HandleFunc("DELETE /triples", s.handleDeleteTriples)
	m.HandleFunc("POST /compact", s.handleCompact)
	return m
}

// handler wraps the mux with per-request logging (method, path, status,
// duration) for serving observability.
func (s *server) handler() http.Handler {
	return logRequests(s.mux())
}

// statusWriter records the response code for the request log.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

func logRequests(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		h.ServeHTTP(sw, r)
		log.Printf("%s %s %d %s", r.Method, r.URL.Path, sw.code,
			time.Since(start).Round(time.Microsecond))
	})
}

// summary returns the (possibly cached) summary of one kind plus the
// epoch it reflects; the live store rebuilds it lazily when it is staler
// than the server's tolerance.
func (s *server) summary(kind rdfsum.Kind) (*rdfsum.Summary, uint64, error) {
	return s.live.Summary(kind, s.maxStale)
}

// pruner returns the summary-pruning gate of one kind with the epoch of
// the summary it reflects, rebuilding when that summary moved.
func (s *server) pruner(kind rdfsum.Kind) (*rdfsum.QueryPruner, uint64, error) {
	sum, epoch, err := s.summary(kind)
	if err != nil {
		return nil, 0, err
	}
	cell := &s.pruners[kind]
	cell.mu.Lock()
	defer cell.mu.Unlock()
	if cell.pruner == nil || cell.epoch != epoch {
		cell.pruner = rdfsum.NewQueryPruner(sum)
		cell.epoch = epoch
	}
	return cell.pruner, cell.epoch, nil
}

// planStatsMaxStale is the minimum staleness tolerance applied to the
// planner's weights lookup. Join-order statistics are pure heuristics —
// a stale estimate reorders joins suboptimally, never wrongly — so they
// are not worth an O(graph) weak-summary rebuild on the query path after
// every ingest batch (which -max-stale 0, the soundness-oriented
// default, would otherwise force).
const planStatsMaxStale = 32

// planStats returns the weak summary's quotient-map cardinalities, the
// statistics behind the planner's join ordering, rebuilt when the weak
// summary trails by more than the staleness tolerance. Nil (with a
// logged warning) when the weak summary cannot be built.
func (s *server) planStats() *rdfsum.Weights {
	stale := s.maxStale
	if stale < planStatsMaxStale {
		stale = planStatsMaxStale
	}
	sum, epoch, err := s.live.Summary(rdfsum.Weak, stale)
	if err != nil {
		log.Printf("rdfsumd: planner stats unavailable: %v", err)
		return nil
	}
	s.weightsMu.Lock()
	defer s.weightsMu.Unlock()
	if s.weights == nil || s.weightsEpoch != epoch {
		s.weights = sum.ComputeWeights()
		s.weightsEpoch = epoch
	}
	return s.weights
}

// handleMetrics exposes the serving counters in the Prometheus text
// exposition format, making staleness observable in production: the store
// epoch, triple/WAL counts, and — per summary kind — the epoch of the
// last materialized summary, whether the kind is incrementally maintained
// or lazily rebuilt, how many full rebuilds it has paid, and how far it
// currently trails the store.
func (s *server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	st := s.live.Stats()
	var b strings.Builder
	durable := 0
	if st.Durable {
		durable = 1
	}
	fmt.Fprintf(&b, "# TYPE rdfsum_epoch gauge\nrdfsum_epoch %d\n", st.Epoch)
	fmt.Fprintf(&b, "# TYPE rdfsum_triples gauge\nrdfsum_triples %d\n", st.Triples)
	fmt.Fprintf(&b, "# TYPE rdfsum_added_total counter\nrdfsum_added_total %d\n", st.Added)
	fmt.Fprintf(&b, "# TYPE rdfsum_deleted_total counter\nrdfsum_deleted_total %d\n", st.Deleted)
	fmt.Fprintf(&b, "# TYPE rdfsum_durable gauge\nrdfsum_durable %d\n", durable)
	fmt.Fprintf(&b, "# TYPE rdfsum_generation gauge\nrdfsum_generation %d\n", st.Gen)
	fmt.Fprintf(&b, "# TYPE rdfsum_wal_bytes gauge\nrdfsum_wal_bytes %d\n", st.WALBytes)
	fmt.Fprintf(&b, "# TYPE rdfsum_index_runs gauge\nrdfsum_index_runs %d\n", st.IndexRuns)
	fmt.Fprintf(&b, "# TYPE rdfsum_index_tombstones gauge\nrdfsum_index_tombstones %d\n", st.IndexTombs)
	b.WriteString("# TYPE rdfsum_summary_epoch gauge\n")
	b.WriteString("# TYPE rdfsum_summary_staleness gauge\n")
	b.WriteString("# TYPE rdfsum_summary_lazy_builds_total counter\n")
	b.WriteString("# TYPE rdfsum_summary_maintenance_rebuilds_total counter\n")
	for _, ks := range s.live.Status() {
		mode := "lazy"
		if ks.Maintained {
			mode = "maintained"
		}
		labels := fmt.Sprintf("{kind=%q,mode=%q}", ks.Kind.String(), mode)
		fmt.Fprintf(&b, "rdfsum_summary_epoch%s %d\n", labels, ks.CachedEpoch)
		// How far the last materialized summary trails the store. Under
		// -max-stale > 0 even a maintained kind serves its cached build
		// within the tolerance, so the gauge reports the cache's actual
		// trail for every mode (0 until a kind is first materialized).
		staleness := uint64(0)
		if ks.CachedEpoch > 0 && st.Epoch > ks.CachedEpoch {
			staleness = st.Epoch - ks.CachedEpoch
		}
		fmt.Fprintf(&b, "rdfsum_summary_staleness%s %d\n", labels, staleness)
		fmt.Fprintf(&b, "rdfsum_summary_lazy_builds_total%s %d\n", labels, ks.LazyBuilds)
		fmt.Fprintf(&b, "rdfsum_summary_maintenance_rebuilds_total%s %d\n", labels, ks.Rebuilds)
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	io.WriteString(w, b.String()) //nolint:errcheck
}

func (s *server) handleStats(w http.ResponseWriter, _ *http.Request) {
	snap := s.live.Snapshot()
	st := s.live.Stats()
	g := snap.Graph
	writeJSON(w, map[string]any{
		"triples":          g.NumEdges(),
		"data_triples":     len(g.Data),
		"type_triples":     len(g.Types),
		"schema_triples":   len(g.Schema),
		"data_nodes":       len(g.DataNodes()),
		"class_nodes":      len(g.ClassNodes()),
		"properties":       len(g.DistinctDataProperties()),
		"epoch":            snap.Epoch,
		"durable":          st.Durable,
		"wal_bytes":        st.WALBytes,
		"generation":       st.Gen,
		"deleted":          st.Deleted,
		"index_runs":       st.IndexRuns,
		"index_tombstones": st.IndexTombs,
	})
}

func (s *server) handleSummary(w http.ResponseWriter, r *http.Request) {
	kindName := r.URL.Query().Get("kind")
	if kindName == "" {
		kindName = "weak"
	}
	kind, err := rdfsum.ParseKind(kindName)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	sum, epoch, err := s.summary(kind)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	switch r.URL.Query().Get("format") {
	case "", "json":
		writeJSON(w, map[string]any{
			"kind":        kind.String(),
			"data_nodes":  sum.Stats.DataNodes,
			"all_nodes":   sum.Stats.AllNodes,
			"data_edges":  sum.Stats.DataEdges,
			"all_edges":   sum.Stats.AllEdges,
			"compression": sum.Stats.CompressionRatio(),
			"epoch":       epoch,
			"stale":       s.live.Epoch() - epoch,
		})
	case "ntriples":
		w.Header().Set("Content-Type", "application/n-triples")
		if err := rdfsum.WriteNTriples(w, sum.Graph.Decode()); err != nil {
			httpError(w, http.StatusInternalServerError, err)
		}
	case "dot":
		w.Header().Set("Content-Type", "text/vnd.graphviz")
		if err := rdfsum.ExportDOT(w, sum.Graph, kind.String()+" summary"); err != nil {
			httpError(w, http.StatusInternalServerError, err)
		}
	default:
		httpError(w, http.StatusBadRequest,
			fmt.Errorf("unknown format %q (want json, ntriples or dot)", r.URL.Query().Get("format")))
	}
}

func (s *server) handleProfile(w http.ResponseWriter, r *http.Request) {
	sum, epoch, err := s.summary(rdfsum.TypedWeak)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	p := profile.Build(sum)
	type kindJSON struct {
		Label         string   `json:"label"`
		Instances     int      `json:"instances"`
		Attributes    []string `json:"attributes,omitempty"`
		Relationships []string `json:"relationships,omitempty"`
	}
	out := make([]kindJSON, 0, len(p.Kinds))
	for _, k := range p.Kinds {
		out = append(out, kindJSON{k.Label(), k.Instances, k.Attributes, k.Relationships})
	}
	writeJSON(w, map[string]any{
		"triples": p.InputTriples,
		"nodes":   p.InputNodes,
		"kinds":   out,
		"epoch":   epoch,
	})
}

// parseTriplesBody parses an N-Triples request body straight off the wire
// — no body buffering — with a limited reader enforcing the ingest cap.
// Nothing is applied until the whole body parsed, so a rejected request
// changes no state. On failure the response has been written.
func parseTriplesBody(w http.ResponseWriter, r *http.Request) ([]rdfsum.Triple, bool) {
	lr := &io.LimitedReader{R: r.Body, N: maxIngestBody + 1}
	var triples []rdfsum.Triple
	parseErr := rdfsum.ParseStream(lr, func(t rdfsum.Triple) error {
		triples = append(triples, t)
		return nil
	})
	if lr.N == 0 { // the cap (plus its sentinel byte) was consumed
		// Refuse rather than apply a silently truncated prefix (the
		// parse error, if any, is an artifact of the cut).
		httpError(w, http.StatusRequestEntityTooLarge,
			fmt.Errorf("body exceeds %d bytes; split the request into smaller batches", maxIngestBody))
		return nil, false
	}
	if parseErr != nil {
		httpError(w, http.StatusBadRequest, parseErr)
		return nil, false
	}
	return triples, true
}

// handleTriples ingests an N-Triples body as one acknowledged batch: the
// triples are WAL-logged and fsynced (durable stores), applied to the
// graph and the incremental weak summary, and published as a new epoch —
// all while concurrent queries keep reading their snapshots.
func (s *server) handleTriples(w http.ResponseWriter, r *http.Request) {
	triples, ok := parseTriplesBody(w, r)
	if !ok {
		return
	}
	if err := s.live.AddBatch(triples); err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	snap := s.live.Snapshot()
	writeJSON(w, map[string]any{
		"added":   len(triples),
		"triples": snap.Graph.NumEdges(),
		"epoch":   snap.Epoch,
		"durable": s.live.Durable(),
	})
}

// handleDeleteTriples removes every stored copy of the triples in an
// N-Triples body as one acknowledged batch: the deletion is WAL-logged
// and fsynced (durable stores), the graph and maintained summaries
// shrink, and a tombstone run publishes in the tiered index. Concurrent
// queries on earlier epochs are unaffected. Triples not present are
// ignored; "removed" reports the copies actually deleted.
func (s *server) handleDeleteTriples(w http.ResponseWriter, r *http.Request) {
	triples, ok := parseTriplesBody(w, r)
	if !ok {
		return
	}
	removed, err := s.live.DeleteBatch(triples)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	snap := s.live.Snapshot()
	writeJSON(w, map[string]any{
		"removed": removed,
		"triples": snap.Graph.NumEdges(),
		"epoch":   snap.Epoch,
		"durable": s.live.Durable(),
	})
}

// handleCompact folds the WAL into a fresh snapshot generation.
func (s *server) handleCompact(w http.ResponseWriter, _ *http.Request) {
	if !s.live.Durable() {
		httpError(w, http.StatusConflict,
			fmt.Errorf("store is memory-only (start rdfsumd with -live to enable compaction)"))
		return
	}
	if err := s.live.Compact(); err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	st := s.live.Stats()
	writeJSON(w, map[string]any{
		"epoch":      st.Epoch,
		"generation": st.Gen,
		"wal_bytes":  st.WALBytes,
	})
}

// queryLimit validates the optional ?limit parameter: a positive integer
// capped at maxQueryLimit, defaulting to defaultQueryLimit.
func queryLimit(r *http.Request) (int, error) {
	raw := r.URL.Query().Get("limit")
	if raw == "" {
		return defaultQueryLimit, nil
	}
	n, err := strconv.Atoi(raw)
	if err != nil || n <= 0 {
		return 0, fmt.Errorf("invalid limit %q (want a positive integer)", raw)
	}
	if n > maxQueryLimit {
		n = maxQueryLimit
	}
	return n, nil
}

// handleQuery evaluates a SPARQL BGP posted in the body against the
// current epoch snapshot.
//
// Parameters: ?saturate=true evaluates against G∞; ?limit=N caps the rows
// (default 10000, capped at 100000); ?explain=true adds the join-order
// report; ?prune selects the summary kind gating provably-empty queries
// (default weak, "off" disables). The response reports the epoch of the
// data the rows reflect, whether the row set was truncated, and — when
// the pruning gate was actually applied — prune_epoch. A gate whose
// summary trails the evaluated epoch is skipped rather than served:
// pruning with a summary that has not seen the latest triples would be
// unsound (it could prove a non-empty query "empty").
func (s *server) handleQuery(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	q, err := rdfsum.ParseQuery(string(body))
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	limit, err := queryLimit(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	opts := &rdfsum.QueryOptions{
		Limit:   limit,
		Explain: r.URL.Query().Get("explain") == "true",
	}
	// Guarded assignment: a nil *Weights stored directly into the
	// interface field would be a non-nil PlanStats and panic the planner.
	// Planner statistics are heuristics, so a stale epoch is fine here.
	if w := s.planStats(); w != nil {
		opts.Stats = w
	}
	// Pin the evaluated graph before fetching the pruning gate, so the
	// soundness condition below can be checked against it.
	snap := s.live.Snapshot()
	g, ix := snap.Graph, snap.Index
	evalEpoch := snap.Epoch
	saturated := r.URL.Query().Get("saturate") == "true"
	if saturated {
		g, ix, evalEpoch = s.saturatedIndex(snap)
	}
	var pruneEpoch uint64
	pruneName := r.URL.Query().Get("prune")
	if pruneName == "" {
		pruneName = "weak"
	}
	if pruneName != "off" {
		kind, err := rdfsum.ParseKind(pruneName)
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		pruner, epoch, err := s.pruner(kind)
		if err != nil {
			httpError(w, http.StatusInternalServerError, err)
			return
		}
		// Soundness (Prop. 1 + monotonicity): emptiness on the summary of
		// a graph that CONTAINS the evaluated one proves emptiness below.
		// Graphs only grow, so the gate is sound iff its summary epoch is
		// at least the evaluated epoch; a gate that trails it (possible
		// under -max-stale, or when an ingest raced this request) could
		// wrongly prune triples it has never seen — skip pruning instead.
		if epoch >= evalEpoch {
			opts.Pruner = pruner
			pruneEpoch = epoch
		}
	}
	res, err := rdfsum.EvalQueryWithOptions(g, ix, q, opts)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	rows := make([][]string, 0, len(res.Rows))
	for _, row := range res.Rows {
		cells := make([]string, len(row))
		for i, term := range row {
			cells[i] = term.String()
		}
		rows = append(rows, cells)
	}
	// "epoch" is the epoch of the data the rows were computed from: the
	// snapshot's, or — under ?saturate with a staleness tolerance — the
	// epoch of the cached saturated graph.
	payload := map[string]any{
		"vars":      res.Vars,
		"rows":      rows,
		"count":     len(rows),
		"truncated": res.Truncated,
		"epoch":     evalEpoch,
	}
	if saturated {
		payload["saturate_epoch"] = evalEpoch
	}
	if opts.Pruner != nil {
		payload["prune_epoch"] = pruneEpoch
	}
	if res.Explain != nil {
		payload["explain"] = res.Explain
	}
	writeJSON(w, payload)
}

// saturatedIndex returns G∞, its index and the epoch it reflects, cached
// across requests and rebuilt when the epoch moves beyond the staleness
// tolerance.
func (s *server) saturatedIndex(snap *rdfsum.LiveSnapshot) (*rdfsum.Graph, *store.Index, uint64) {
	s.satMu.Lock()
	defer s.satMu.Unlock()
	if s.satGraph == nil || s.satEpoch+s.maxStale < snap.Epoch {
		s.satGraph = rdfsum.Saturate(snap.Graph)
		s.satIx = rdfsum.NewIndex(s.satGraph)
		s.satEpoch = snap.Epoch
	}
	return s.satGraph, s.satIx, s.satEpoch
}

// writeJSON encodes v; headers are already sent by the time an encode
// error can occur, so it is logged rather than silently dropped.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		log.Printf("rdfsumd: response encode: %v", err)
	}
}

func httpError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if encErr := json.NewEncoder(w).Encode(map[string]string{"error": err.Error()}); encErr != nil {
		log.Printf("rdfsumd: error-response encode: %v", encErr)
	}
}
