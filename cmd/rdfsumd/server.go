package main

import (
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"time"

	"rdfsum"
	"rdfsum/internal/httpapi"
	"rdfsum/internal/obs"
	"rdfsum/internal/profile"
	"rdfsum/internal/repl"
	"rdfsum/internal/store"
)

// Query row limits: the default when the client sends none, and the hard
// cap a client-supplied ?limit may not exceed.
const (
	defaultQueryLimit = 10_000
	maxQueryLimit     = 100_000
)

// maxIngestBody bounds a POST /v1/triples body.
const maxIngestBody = 64 << 20

// prunerCell caches the saturated-summary emptiness oracle of one kind,
// tagged with the store instance and epoch of the summary it was built
// from. The mutex singleflights rebuilds of that kind; other kinds
// proceed independently.
type prunerCell struct {
	mu     sync.Mutex
	inst   uint64
	epoch  uint64
	pruner *rdfsum.QueryPruner
}

// server fronts a live graph store. All reads go through the store's
// published epoch snapshots, so they are consistent and wait-free under
// concurrent ingest; derived artifacts (summaries, pruners, planner
// weights, the saturated graph) are cached per epoch and rebuilt lazily
// when stale beyond the configured tolerance.
//
// On a follower the store itself is replaced at each replication
// bootstrap and its epoch counter restarts, so every epoch-keyed cache is
// additionally keyed by the bootstrap instance: an epoch comparison
// across instances is meaningless, and acting on one (e.g. applying an
// old instance's pruning gate) would be unsound.
type server struct {
	lv       *rdfsum.Live        // fixed store; nil on followers
	queue    *rdfsum.IngestQueue // bounded ingest admission; nil on followers
	follower *repl.Follower      // non-nil on read replicas (-follow)
	leader   *repl.Leader        // non-nil on durable stores (serves /v1/repl)

	// maxStale is how many epochs behind a cached summary-derived
	// artifact may serve before it is rebuilt (0 = always rebuild when
	// stale). Staleness is reported to clients either way.
	maxStale uint64

	pruners [rdfsum.NumKinds]prunerCell // indexed by rdfsum.Kind

	satMu    sync.Mutex
	satInst  uint64
	satEpoch uint64
	satGraph *rdfsum.Graph
	satIx    *store.Index

	weightsMu    sync.Mutex
	weightsInst  uint64
	weightsEpoch uint64
	weights      *rdfsum.Weights

	// Observability: the per-instance registry (store gauges sampled at
	// scrape time + HTTP histograms; merged with obs.Default by
	// /metrics), the request middleware handles, structured logging, and
	// the slow-query log.
	reg    *obs.Registry
	httpm  *obs.HTTPMetrics
	logger *slog.Logger
	slow   *obs.SlowQueryLog
}

// serverConfig collects rdfsumd's startup knobs.
type serverConfig struct {
	in          string // input graph (.nt/.ttl, optionally .gz/.zst, or snapshot); seeds -live
	liveDir     string // durable store directory ("" = memory-only)
	follow      string // leader base URL; makes this a read replica
	workers     int    // bulk-load parse workers (0 = all CPUs)
	maxStale    uint64
	noSync      bool
	maintain    []rdfsum.Kind
	indexFanout int
	indexSpill  int64 // index-run spill threshold in bytes (0 = memory only)
	verifySnap  bool  // eager snapshot CRC verification at open
	queueDepth  int   // ingest queue batch bound (0 = default)
	queueBytes  int64 // ingest queue byte budget (0 = default)

	logger    *slog.Logger  // structured log sink (nil = slog.Default())
	slowQuery time.Duration // slow-query log threshold (0 = disabled)
}

// newServer builds the serving state. With cfg.follow set the server is a
// read-only replica: it bootstraps from the leader's snapshot and tails
// its WAL (see internal/repl). Otherwise, when cfg.liveDir is set the
// store is durable (WAL + snapshots in that directory) and cfg.in — if
// any — seeds a fresh store; without it cfg.in is loaded into a
// memory-only live store. N-Triples inputs go through the parallel
// pipeline with the given worker count (0 = all CPUs, 1 = sequential).
// cfg.maintain lists the summary kinds the quotient engine keeps
// incrementally current (nil = weak only); cfg.indexFanout tunes the
// tiered index's fold width (0 = default).
func newServer(cfg serverConfig) (*server, error) {
	logger := cfg.logger
	if logger == nil {
		logger = slog.Default()
	}
	if cfg.follow != "" {
		if cfg.in != "" || cfg.liveDir != "" {
			return nil, fmt.Errorf("-follow is exclusive with -in and -live: a replica's only data source is its leader")
		}
		f, err := repl.NewFollower(cfg.follow, repl.FollowerOptions{
			Maintain:    cfg.maintain,
			IndexFanout: cfg.indexFanout,
			Logger:      logger,
		})
		if err != nil {
			return nil, err
		}
		f.Start()
		s := &server{follower: f, maxStale: cfg.maxStale}
		s.initObs(logger, cfg.slowQuery)
		return s, nil
	}
	if cfg.in != "" && cfg.liveDir != "" && rdfsum.LiveHasState(cfg.liveDir) {
		// A seed only applies to a fresh store; skip the (possibly huge)
		// load instead of parsing and silently discarding it.
		logger.Warn("seed input ignored: live store already has state",
			"in", cfg.in, "live", cfg.liveDir)
		cfg.in = ""
	}
	var seed *rdfsum.Graph
	if cfg.in != "" {
		var err error
		// Names declaring an RDF dump — .nt/.ttl, with or without a
		// .gz/.zst layer — stream through the format-aware parallel
		// loader; anything else is read as a binary snapshot.
		if format, codec := rdfsum.DetectFile(cfg.in); format != rdfsum.FormatAuto || codec != rdfsum.CompressionNone {
			seed, err = rdfsum.LoadFile(cfg.in, &rdfsum.LoadOptions{Workers: cfg.workers})
		} else {
			seed, err = rdfsum.LoadSnapshot(cfg.in)
		}
		if err != nil {
			return nil, fmt.Errorf("loading %s: %w", cfg.in, err)
		}
	}
	opts := &rdfsum.LiveOptions{
		NoSync: cfg.noSync, Seed: seed, Maintain: cfg.maintain,
		IndexFanout: cfg.indexFanout, IndexSpillBytes: cfg.indexSpill, VerifySnapshot: cfg.verifySnap,
	}
	var lv *rdfsum.Live
	if cfg.liveDir != "" {
		var err error
		lv, err = rdfsum.OpenLive(cfg.liveDir, opts)
		if err != nil {
			return nil, err
		}
		if lv.RecoveredTorn {
			logger.Warn("WAL recovery dropped a torn tail (crash mid-append); acknowledged batches are intact")
		}
	} else {
		lv = rdfsum.NewLiveWithOptions(seed, opts)
	}
	s := &server{lv: lv, maxStale: cfg.maxStale}
	s.queue = rdfsum.NewIngestQueue(lv, cfg.queueDepth, cfg.queueBytes)
	if lv.Durable() {
		s.leader = repl.NewLeader(lv)
	}
	s.initObs(logger, cfg.slowQuery)
	return s, nil
}

// newServerFromGraph wraps an in-memory graph; used by tests and
// embedders.
func newServerFromGraph(g *rdfsum.Graph) *server {
	lv := rdfsum.NewLive(g)
	s := &server{lv: lv, queue: rdfsum.NewIngestQueue(lv, 0, 0)}
	s.initObs(nil, 0)
	return s
}

// initObs wires the server's observability: its per-instance metric
// registry (merged with the process-wide obs.Default at scrape time),
// the HTTP middleware instrumentation, the structured logger, and the
// slow-query log. Every pre-existing rdfsum_* series keeps its exact
// name and label set; values are sampled from the serving state by a
// scrape hook just before each exposition.
func (s *server) initObs(logger *slog.Logger, slowQuery time.Duration) {
	if logger == nil {
		logger = slog.Default()
	}
	s.logger = logger
	s.slow = &obs.SlowQueryLog{Threshold: slowQuery, Logger: logger}
	s.reg = obs.NewRegistry()
	s.httpm = obs.NewHTTPMetrics(s.reg)

	r := s.reg
	epoch := r.Gauge("rdfsum_epoch", "Current published epoch of the serving store.")
	triples := r.Gauge("rdfsum_triples", "Triples in the current epoch snapshot.")
	added := r.Counter("rdfsum_added_total", "Triples added over the store's lifetime.")
	deleted := r.Counter("rdfsum_deleted_total", "Triple copies deleted over the store's lifetime.")
	durable := r.Gauge("rdfsum_durable", "1 when the store is durable (WAL + snapshots), 0 when memory-only.")
	readOnly := r.Gauge("rdfsum_read_only", "1 when this server is a read-only follower.")
	generation := r.Gauge("rdfsum_generation", "Snapshot generation of the durable store.")
	walBytes := r.Gauge("rdfsum_wal_bytes", "Bytes in the current WAL generation.")
	indexRuns := r.Gauge("rdfsum_index_runs", "Runs in the tiered delta index.")
	indexTombs := r.Gauge("rdfsum_index_tombstones", "Tombstones pending in the tiered delta index.")
	// wal_records is only rendered where the legacy exposition rendered
	// it: stores whose ReplState resolves, i.e. durable leaders.
	var walRecords *obs.Gauge
	if s.lv != nil && s.lv.Durable() {
		walRecords = r.Gauge("rdfsum_wal_records", "Records in the current WAL generation.")
	}
	var qDepth, qMaxDepth, qBytes, qMaxBytes *obs.Gauge
	var qRejected *obs.Counter
	if s.queue != nil {
		qDepth = r.Gauge("rdfsum_ingest_queue_depth", "Batches waiting in the bounded ingest queue.")
		qMaxDepth = r.Gauge("rdfsum_ingest_queue_max_depth", "Ingest queue batch capacity.")
		qBytes = r.Gauge("rdfsum_ingest_queue_bytes", "Payload bytes buffered in the ingest queue.")
		qMaxBytes = r.Gauge("rdfsum_ingest_queue_max_bytes", "Ingest queue byte budget.")
		qRejected = r.Counter("rdfsum_ingest_queue_rejected_total", "Batches shed with 429 by the saturated ingest queue.")
	}
	var lagBytes, lagRecords, lagEpochs, appliedRecords, tailing *obs.Gauge
	var bootstraps *obs.Counter
	if s.follower != nil {
		lagBytes = r.Gauge("rdfsum_replication_lag_bytes", "WAL bytes the follower trails its leader by.")
		lagRecords = r.Gauge("rdfsum_replication_lag_records", "WAL records the follower trails its leader by.")
		lagEpochs = r.Gauge("rdfsum_replication_lag_epochs", "Leader epochs the follower trails by.")
		appliedRecords = r.Gauge("rdfsum_replication_applied_records", "WAL records applied in the current generation.")
		bootstraps = r.Counter("rdfsum_replication_bootstraps_total", "Snapshot bootstraps performed by this follower.")
		tailing = r.Gauge("rdfsum_replication_tailing", "1 while the follower is tailing the leader's WAL.")
	}
	sumEpoch := r.GaugeVec("rdfsum_summary_epoch", "Epoch of the last materialized summary, per kind.", "kind", "mode")
	sumStaleness := r.GaugeVec("rdfsum_summary_staleness", "Epochs the cached summary trails the store by, per kind.", "kind", "mode")
	sumLazy := r.CounterVec("rdfsum_summary_lazy_builds_total", "Full summary rebuilds served lazily, per kind.", "kind", "mode")
	sumRebuilds := r.CounterVec("rdfsum_summary_maintenance_rebuilds_total", "Incremental-maintenance rebuilds, per kind.", "kind", "mode")

	boolGauge := func(v bool) float64 {
		if v {
			return 1
		}
		return 0
	}
	r.OnScrape(func() {
		lv, _ := s.state()
		st := lv.Stats()
		epoch.Set(float64(st.Epoch))
		triples.Set(float64(st.Triples))
		added.Set(float64(st.Added))
		deleted.Set(float64(st.Deleted))
		durable.Set(boolGauge(st.Durable))
		readOnly.Set(boolGauge(s.readOnly()))
		generation.Set(float64(st.Gen))
		walBytes.Set(float64(st.WALBytes))
		indexRuns.Set(float64(st.IndexRuns))
		indexTombs.Set(float64(st.IndexTombs))
		if walRecords != nil {
			if rs, err := lv.ReplState(); err == nil {
				walRecords.Set(float64(rs.WALRecords))
			}
		}
		if s.queue != nil {
			qs := s.queue.Stats()
			qDepth.Set(float64(qs.Depth))
			qMaxDepth.Set(float64(qs.MaxDepth))
			qBytes.Set(float64(qs.Bytes))
			qMaxBytes.Set(float64(qs.MaxBytes))
			qRejected.Set(float64(qs.Rejected))
		}
		if s.follower != nil {
			fs := s.follower.Status()
			lagBytes.Set(float64(fs.LagBytes))
			lagRecords.Set(float64(fs.LagRecords))
			lagEpochs.Set(float64(fs.LagEpochs))
			appliedRecords.Set(float64(fs.AppliedRecords))
			bootstraps.Set(float64(fs.Bootstraps))
			tailing.Set(boolGauge(fs.State == repl.StateTailing))
		}
		for _, ks := range lv.Status() {
			mode := "lazy"
			if ks.Maintained {
				mode = "maintained"
			}
			kind := ks.Kind.String()
			sumEpoch.With(kind, mode).Set(float64(ks.CachedEpoch))
			// How far the last materialized summary trails the store.
			// Under -max-stale > 0 even a maintained kind serves its
			// cached build within the tolerance, so the gauge reports the
			// cache's actual trail for every mode (0 until a kind is
			// first materialized).
			staleness := uint64(0)
			if ks.CachedEpoch > 0 && st.Epoch > ks.CachedEpoch {
				staleness = st.Epoch - ks.CachedEpoch
			}
			sumStaleness.With(kind, mode).Set(float64(staleness))
			sumLazy.With(kind, mode).Set(float64(ks.LazyBuilds))
			sumRebuilds.With(kind, mode).Set(float64(ks.Rebuilds))
		}
	})
}

// state returns the live store to serve this request from and the
// replication-bootstrap instance it belongs to (0 on non-followers).
// Handlers call it once and thread the pair through, so one request
// never mixes stores across a concurrent re-bootstrap.
func (s *server) state() (*rdfsum.Live, uint64) {
	if s.follower != nil {
		return s.follower.Live()
	}
	return s.lv, 0
}

// readOnly reports whether this server rejects mutations (it is a
// replica; writes go to its leader).
func (s *server) readOnly() bool { return s.follower != nil }

// close releases the serving state: the ingest queue drains its admitted
// batches first, then the replication loop and store shut down.
func (s *server) close() error {
	if s.follower != nil {
		return s.follower.Close()
	}
	if s.queue != nil {
		s.queue.Close()
	}
	return s.lv.Close()
}

// route registers h under the versioned /v1 path and a legacy
// unversioned alias. The alias answers identically but stamps the
// RFC 8594-style deprecation headers pointing at its successor.
func route(m *http.ServeMux, pattern string, h http.HandlerFunc) {
	method, path, ok := strings.Cut(pattern, " ")
	if !ok {
		panic("route pattern must be \"METHOD /path\": " + pattern)
	}
	m.HandleFunc(method+" /v1"+path, h)
	successor := fmt.Sprintf("</v1%s>; rel=\"successor-version\"", path)
	m.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Deprecation", "true")
		w.Header().Set("Link", successor)
		h(w, r)
	})
}

// mutating gates a write handler: followers reject it with the
// "read_only" error code instead of diverging from their leader.
func (s *server) mutating(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.readOnly() {
			httpapi.WriteError(w, httpapi.Errorf(http.StatusForbidden, httpapi.CodeReadOnly,
				"this replica is a read-only follower of %s; send writes to the leader", s.follower.Status().Leader))
			return
		}
		h(w, r)
	}
}

func (s *server) mux() *http.ServeMux {
	m := http.NewServeMux()
	route(m, "GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		io.WriteString(w, "ok\n") //nolint:errcheck
	})
	route(m, "GET /metrics", s.handleMetrics)
	route(m, "GET /stats", s.handleStats)
	route(m, "GET /summary", s.handleSummary)
	route(m, "GET /profile", s.handleProfile)
	route(m, "POST /query", s.handleQuery)
	route(m, "POST /triples", s.mutating(s.handleTriples))
	route(m, "DELETE /triples", s.mutating(s.handleDeleteTriples))
	route(m, "POST /compact", s.mutating(s.handleCompact))
	// /v1-only surfaces (no legacy alias to deprecate).
	m.HandleFunc("GET /v1/replication", s.handleReplication)
	if s.leader != nil {
		s.leader.Mount(m, "/v1/repl")
	}
	// Unknown paths get the JSON envelope, not the stdlib text 404.
	m.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		httpapi.WriteError(w, httpapi.Errorf(http.StatusNotFound, httpapi.CodeNotFound,
			"no such route %s (the API lives under /v1/)", r.URL.Path))
	})
	return m
}

// handler wraps the mux with the observability middleware: per-route
// latency/size histograms, a request ID accepted or generated and
// echoed as X-Request-Id, and one structured log line per request
// (health checks and metrics scrapes at debug).
func (s *server) handler() http.Handler {
	return obs.Middleware(s.mux(), s.httpm, s.logger)
}

// debugHandler builds the -debug-addr mux: net/http/pprof plus a
// /debug/vars-style JSON dump of both metric registries. Never mounted
// on the public handler.
func (s *server) debugHandler() http.Handler {
	m := http.NewServeMux()
	mountPprof(m)
	m.HandleFunc("GET /debug/vars", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		obs.DumpJSON(w, s.reg, obs.Default)
	})
	return m
}

// summary returns the (possibly cached) summary of one kind plus the
// epoch it reflects; the live store rebuilds it lazily when it is staler
// than the server's tolerance.
func (s *server) summary(lv *rdfsum.Live, kind rdfsum.Kind) (*rdfsum.Summary, uint64, error) {
	return lv.Summary(kind, s.maxStale)
}

// pruner returns the summary-pruning gate of one kind with the epoch of
// the summary it reflects, rebuilding when that summary moved or the
// serving instance was swapped by a replication bootstrap.
func (s *server) pruner(lv *rdfsum.Live, inst uint64, kind rdfsum.Kind) (*rdfsum.QueryPruner, uint64, error) {
	sum, epoch, err := s.summary(lv, kind)
	if err != nil {
		return nil, 0, err
	}
	cell := &s.pruners[kind]
	cell.mu.Lock()
	defer cell.mu.Unlock()
	if cell.pruner == nil || cell.inst != inst || cell.epoch != epoch {
		cell.pruner = rdfsum.NewQueryPruner(sum)
		cell.inst = inst
		cell.epoch = epoch
	}
	return cell.pruner, cell.epoch, nil
}

// planStatsMaxStale is the minimum staleness tolerance applied to the
// planner's weights lookup. Join-order statistics are pure heuristics —
// a stale estimate reorders joins suboptimally, never wrongly — so they
// are not worth an O(graph) weak-summary rebuild on the query path after
// every ingest batch (which -max-stale 0, the soundness-oriented
// default, would otherwise force).
const planStatsMaxStale = 32

// planStats returns the weak summary's quotient-map cardinalities, the
// statistics behind the planner's join ordering, rebuilt when the weak
// summary trails by more than the staleness tolerance. Nil (with a
// logged warning) when the weak summary cannot be built.
func (s *server) planStats(lv *rdfsum.Live, inst uint64) *rdfsum.Weights {
	stale := s.maxStale
	if stale < planStatsMaxStale {
		stale = planStatsMaxStale
	}
	sum, epoch, err := lv.Summary(rdfsum.Weak, stale)
	if err != nil {
		s.logger.Warn("planner stats unavailable", "error", err)
		return nil
	}
	s.weightsMu.Lock()
	defer s.weightsMu.Unlock()
	if s.weights == nil || s.weightsInst != inst || s.weightsEpoch != epoch {
		s.weights = sum.ComputeWeights()
		s.weightsInst = inst
		s.weightsEpoch = epoch
	}
	return s.weights
}

// handleMetrics exposes the serving metrics in the Prometheus text
// exposition format: the per-instance registry (store epoch, triple/WAL
// counts, per-kind summary staleness, replication lag on a replica,
// per-route HTTP latency histograms) merged with the process-wide
// registry of hot-path timings (WAL append/fsync, epoch publish, query
// stages, index folds, replication apply).
func (s *server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	obs.WriteExposition(w, s.reg, obs.Default)
}

func (s *server) handleStats(w http.ResponseWriter, _ *http.Request) {
	lv, _ := s.state()
	snap := lv.Snapshot()
	st := lv.Stats()
	g := snap.Graph
	nd, nt, ns := g.ComponentSizes()
	resp := map[string]any{
		"triples":          g.NumEdges(),
		"data_triples":     nd,
		"type_triples":     nt,
		"schema_triples":   ns,
		"data_nodes":       len(g.DataNodes()),
		"class_nodes":      len(g.ClassNodes()),
		"properties":       len(g.DistinctDataProperties()),
		"epoch":            snap.Epoch,
		"durable":          st.Durable,
		"read_only":        s.readOnly(),
		"wal_bytes":        st.WALBytes,
		"generation":       st.Gen,
		"deleted":          st.Deleted,
		"index_runs":       st.IndexRuns,
		"index_tombstones": st.IndexTombs,
	}
	if s.queue != nil {
		qs := s.queue.Stats()
		resp["ingest_queue_depth"] = qs.Depth
		resp["ingest_queue_max_depth"] = qs.MaxDepth
		resp["ingest_queue_bytes"] = qs.Bytes
		resp["ingest_queue_max_bytes"] = qs.MaxBytes
		resp["ingest_queue_rejected"] = qs.Rejected
	}
	httpapi.WriteJSON(w, resp)
}

// handleReplication reports this server's replication role: followers
// return their catch-up state and lag, leaders their shippable WAL
// extent, and standalone memory-only stores just their role.
func (s *server) handleReplication(w http.ResponseWriter, _ *http.Request) {
	if s.follower != nil {
		httpapi.WriteJSON(w, struct {
			Role    string `json:"role"`
			Durable bool   `json:"durable"`
			repl.FollowerStatus
		}{"follower", false, s.follower.Status()})
		return
	}
	lv, _ := s.state()
	resp := map[string]any{
		"role":    "standalone",
		"durable": lv.Durable(),
		"epoch":   lv.Epoch(),
	}
	if s.leader != nil {
		resp["role"] = "leader"
		if rs, err := lv.ReplState(); err == nil {
			resp["epoch"] = rs.Epoch
			resp["generation"] = rs.Gen
			resp["wal_bytes"] = rs.WALSize
			resp["wal_records"] = rs.WALRecords
		}
	}
	httpapi.WriteJSON(w, resp)
}

func (s *server) handleSummary(w http.ResponseWriter, r *http.Request) {
	kind, err := kindParam(r, "kind", "weak")
	if err != nil {
		httpapi.WriteError(w, err)
		return
	}
	lv, _ := s.state()
	sum, epoch, err := s.summary(lv, kind)
	if err != nil {
		httpapi.WriteError(w, err)
		return
	}
	switch r.URL.Query().Get("format") {
	case "", "json":
		httpapi.WriteJSON(w, map[string]any{
			"kind":        kind.String(),
			"data_nodes":  sum.Stats.DataNodes,
			"all_nodes":   sum.Stats.AllNodes,
			"data_edges":  sum.Stats.DataEdges,
			"all_edges":   sum.Stats.AllEdges,
			"compression": sum.Stats.CompressionRatio(),
			"epoch":       epoch,
			"stale":       lv.Epoch() - epoch,
		})
	case "ntriples":
		w.Header().Set("Content-Type", "application/n-triples")
		if err := rdfsum.WriteNTriples(w, sum.Graph.Decode()); err != nil {
			httpapi.WriteError(w, err)
		}
	case "dot":
		w.Header().Set("Content-Type", "text/vnd.graphviz")
		if err := rdfsum.ExportDOT(w, sum.Graph, kind.String()+" summary"); err != nil {
			httpapi.WriteError(w, err)
		}
	default:
		httpapi.WriteError(w, httpapi.Errorf(http.StatusBadRequest, httpapi.CodeInvalidArgument,
			"unknown format %q (want json, ntriples or dot)", r.URL.Query().Get("format")))
	}
}

func (s *server) handleProfile(w http.ResponseWriter, _ *http.Request) {
	lv, _ := s.state()
	sum, epoch, err := s.summary(lv, rdfsum.TypedWeak)
	if err != nil {
		httpapi.WriteError(w, err)
		return
	}
	p := profile.Build(sum)
	type kindJSON struct {
		Label         string   `json:"label"`
		Instances     int      `json:"instances"`
		Attributes    []string `json:"attributes,omitempty"`
		Relationships []string `json:"relationships,omitempty"`
	}
	out := make([]kindJSON, 0, len(p.Kinds))
	for _, k := range p.Kinds {
		out = append(out, kindJSON{k.Label(), k.Instances, k.Attributes, k.Relationships})
	}
	httpapi.WriteJSON(w, map[string]any{
		"triples": p.InputTriples,
		"nodes":   p.InputNodes,
		"kinds":   out,
		"epoch":   epoch,
	})
}

// ingestCodec maps a request's Content-Encoding header to a decode
// codec. The error is a ready-to-write envelope for unsupported values.
func ingestCodec(r *http.Request) (rdfsum.Compression, error) {
	switch enc := strings.ToLower(strings.TrimSpace(r.Header.Get("Content-Encoding"))); enc {
	case "", "identity":
		return rdfsum.CompressionNone, nil
	case "gzip":
		return rdfsum.CompressionGzip, nil
	case "zstd":
		return rdfsum.CompressionZstd, nil
	default:
		return rdfsum.CompressionNone, httpapi.Errorf(http.StatusUnsupportedMediaType, httpapi.CodeUnsupportedEncoding,
			"Content-Encoding %q is not supported (use identity, gzip or zstd)", enc)
	}
}

// ingestFormat maps a request's Content-Type header to an RDF format.
func ingestFormat(r *http.Request) (rdfsum.Format, error) {
	ct := strings.ToLower(strings.TrimSpace(r.Header.Get("Content-Type")))
	if i := strings.IndexByte(ct, ';'); i >= 0 { // drop parameters (charset=...)
		ct = strings.TrimSpace(ct[:i])
	}
	switch ct {
	case "", "application/n-triples", "text/plain", "application/octet-stream":
		return rdfsum.FormatNTriples, nil
	case "text/turtle", "application/x-turtle":
		return rdfsum.FormatTurtle, nil
	default:
		return rdfsum.FormatAuto, httpapi.Errorf(http.StatusUnsupportedMediaType, httpapi.CodeUnsupportedMediaType,
			"Content-Type %q is not a supported RDF serialization (use application/n-triples or text/turtle)", ct)
	}
}

// parseTriplesBody parses a triples request body straight off the wire —
// no body buffering — honoring Content-Encoding (identity, gzip, zstd;
// decoded as a streaming stage) and Content-Type (N-Triples, Turtle),
// with the ingest cap enforced on the DECODED bytes so a small
// compressed bomb cannot expand past the budget. Nothing is applied
// until the whole body parsed — a truncated or corrupt stream rejects
// the request and changes no state. On failure the response has been
// written. The byte count returned is the decoded payload size, the
// ingest queue's admission currency.
func parseTriplesBody(w http.ResponseWriter, r *http.Request) ([]rdfsum.Triple, int64, bool) {
	codec, err := ingestCodec(r)
	if err != nil {
		httpapi.WriteError(w, err)
		return nil, 0, false
	}
	format, err := ingestFormat(r)
	if err != nil {
		httpapi.WriteError(w, err)
		return nil, 0, false
	}
	lr := &io.LimitedReader{N: maxIngestBody + 1}
	dec, err := rdfsum.NewCompressionReader(r.Body, codec)
	if err != nil {
		httpapi.WriteError(w, httpapi.Errorf(http.StatusBadRequest, httpapi.CodeParse, "%v", err))
		return nil, 0, false
	}
	defer dec.Close()
	lr.R = dec
	var triples []rdfsum.Triple
	parseErr := rdfsum.Stream(lr, &rdfsum.LoadOptions{Format: format, Compression: rdfsum.CompressionNone},
		func(t rdfsum.Triple) error {
			triples = append(triples, t)
			return nil
		})
	if lr.N == 0 { // the cap (plus its sentinel byte) was consumed
		// Refuse rather than apply a silently truncated prefix (the
		// parse error, if any, is an artifact of the cut).
		httpapi.WriteError(w, httpapi.Errorf(http.StatusRequestEntityTooLarge, httpapi.CodeTooLarge,
			"decoded body exceeds %d bytes; split the request into smaller batches", maxIngestBody))
		return nil, 0, false
	}
	if parseErr != nil {
		httpapi.WriteError(w, httpapi.Errorf(http.StatusBadRequest, httpapi.CodeParse, "%v", parseErr))
		return nil, 0, false
	}
	return triples, maxIngestBody + 1 - lr.N, true
}

// ingestRetryAfter is the backoff hint stamped on 429 responses.
const ingestRetryAfter = "1"

// writeOverloaded reports a saturated ingest queue: 429, a Retry-After
// hint, and the stable ingest_overloaded code clients branch on.
func writeOverloaded(w http.ResponseWriter, st rdfsum.IngestQueueStats) {
	w.Header().Set("Retry-After", ingestRetryAfter)
	httpapi.WriteError(w, httpapi.Errorf(http.StatusTooManyRequests, httpapi.CodeIngestOverloaded,
		"ingest queue is full (%d batches, %d bytes buffered); retry after a backoff", st.Depth, st.Bytes))
}

// handleTriples ingests a triples body (N-Triples or Turtle, optionally
// gzip/zstd-compressed) as one acknowledged batch: the parsed batch goes
// through the bounded ingest queue — a saturated queue answers 429 with
// Retry-After rather than buffering without limit — then is WAL-logged
// and fsynced (durable stores), applied to the graph and the incremental
// weak summary, and published as a new epoch, all while concurrent
// queries keep reading their snapshots.
func (s *server) handleTriples(w http.ResponseWriter, r *http.Request) {
	triples, bytes, ok := parseTriplesBody(w, r)
	if !ok {
		return
	}
	lv, _ := s.state()
	var (
		epoch uint64
		err   error
	)
	if s.queue != nil {
		_, epoch, err = s.queue.Add(triples, bytes)
		if errors.Is(err, rdfsum.ErrIngestQueueFull) {
			writeOverloaded(w, s.queue.Stats())
			return
		}
	} else {
		if err = lv.AddBatch(triples); err == nil {
			epoch = lv.Epoch()
		}
	}
	if err != nil {
		httpapi.WriteError(w, err)
		return
	}
	snap := lv.Snapshot()
	httpapi.WriteJSON(w, map[string]any{
		"added":   len(triples),
		"triples": snap.Graph.NumEdges(),
		"epoch":   epoch,
		"durable": lv.Durable(),
	})
}

// handleDeleteTriples removes every stored copy of the triples in an
// N-Triples body as one acknowledged batch: the deletion is WAL-logged
// and fsynced (durable stores), the graph and maintained summaries
// shrink, and a tombstone run publishes in the tiered index. Concurrent
// queries on earlier epochs are unaffected. Triples not present are
// ignored; "removed" reports the copies actually deleted.
func (s *server) handleDeleteTriples(w http.ResponseWriter, r *http.Request) {
	triples, bytes, ok := parseTriplesBody(w, r)
	if !ok {
		return
	}
	lv, _ := s.state()
	var (
		removed int
		epoch   uint64
		err     error
	)
	if s.queue != nil {
		removed, epoch, err = s.queue.Delete(triples, bytes)
		if errors.Is(err, rdfsum.ErrIngestQueueFull) {
			writeOverloaded(w, s.queue.Stats())
			return
		}
	} else {
		if removed, err = lv.DeleteBatch(triples); err == nil {
			epoch = lv.Epoch()
		}
	}
	if err != nil {
		httpapi.WriteError(w, err)
		return
	}
	snap := lv.Snapshot()
	httpapi.WriteJSON(w, map[string]any{
		"removed": removed,
		"triples": snap.Graph.NumEdges(),
		"epoch":   epoch,
		"durable": lv.Durable(),
	})
}

// handleCompact folds the WAL into a fresh snapshot generation.
func (s *server) handleCompact(w http.ResponseWriter, _ *http.Request) {
	lv, _ := s.state()
	if !lv.Durable() {
		httpapi.WriteError(w, httpapi.Errorf(http.StatusConflict, httpapi.CodeMemoryOnly,
			"store is memory-only (start rdfsumd with -live to enable compaction)"))
		return
	}
	if err := lv.Compact(); err != nil {
		httpapi.WriteError(w, err)
		return
	}
	st := lv.Stats()
	httpapi.WriteJSON(w, map[string]any{
		"epoch":      st.Epoch,
		"generation": st.Gen,
		"wal_bytes":  st.WALBytes,
	})
}

// handleQuery evaluates a SPARQL BGP posted in the body against the
// current epoch snapshot.
//
// Parameters: ?saturate=true evaluates against G∞; ?limit=N caps the rows
// (default 10000, capped at 100000); ?explain=true adds the join-order
// report; ?prune selects the summary kind gating provably-empty queries
// (default weak, "off" disables). The response reports the epoch of the
// data the rows reflect, whether the row set was truncated, and — when
// the pruning gate was actually applied — prune_epoch. A gate whose
// summary trails the evaluated epoch is skipped rather than served:
// pruning with a summary that has not seen the latest triples would be
// unsound (it could prove a non-empty query "empty").
func (s *server) handleQuery(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		httpapi.WriteError(w, httpapi.Errorf(http.StatusBadRequest, httpapi.CodeInvalidArgument, "%v", err))
		return
	}
	q, err := rdfsum.ParseQuery(string(body))
	if err != nil {
		httpapi.WriteError(w, httpapi.Errorf(http.StatusBadRequest, httpapi.CodeParse, "%v", err))
		return
	}
	limit, err := limitParam(r)
	if err != nil {
		httpapi.WriteError(w, err)
		return
	}
	t0 := time.Now()
	wantExplain, err := boolParam(r, "explain")
	if err != nil {
		httpapi.WriteError(w, err)
		return
	}
	opts := &rdfsum.QueryOptions{
		Limit: limit,
		// With the slow-query log armed, every query captures its plan so
		// a slow one can be logged with the join order it actually ran;
		// the response only includes it when the client asked.
		Explain: wantExplain || s.slow.Enabled(),
	}
	// Pin the serving store once: on a follower a re-bootstrap may swap it
	// mid-request, and mixing instances would pair snapshots and caches
	// whose epoch counters are unrelated.
	lv, inst := s.state()
	// Planner statistics are heuristics, so a stale epoch is fine here
	// (and a nil *Weights simply falls back to the stats-free order).
	opts.Stats = s.planStats(lv, inst)
	// Pin the evaluated graph before fetching the pruning gate, so the
	// soundness condition below can be checked against it.
	snap := lv.Snapshot()
	g, ix := snap.Graph, snap.Index
	evalEpoch := snap.Epoch
	saturated, err := boolParam(r, "saturate")
	if err != nil {
		httpapi.WriteError(w, err)
		return
	}
	if saturated {
		g, ix, evalEpoch = s.saturatedIndex(snap, inst)
	}
	var pruneEpoch uint64
	if r.URL.Query().Get("prune") != "off" {
		kind, err := kindParam(r, "prune", "weak")
		if err != nil {
			httpapi.WriteError(w, err)
			return
		}
		pruner, epoch, err := s.pruner(lv, inst, kind)
		if err != nil {
			httpapi.WriteError(w, err)
			return
		}
		// Soundness (Prop. 1 + monotonicity): emptiness on the summary of
		// a graph that CONTAINS the evaluated one proves emptiness below.
		// Graphs only grow, so the gate is sound iff its summary epoch is
		// at least the evaluated epoch; a gate that trails it (possible
		// under -max-stale, or when an ingest raced this request) could
		// wrongly prune triples it has never seen — skip pruning instead.
		if epoch >= evalEpoch {
			opts.Pruner = pruner
			pruneEpoch = epoch
		}
	}
	res, err := rdfsum.EvalQueryWithOptions(g, ix, q, opts)
	if err != nil {
		httpapi.WriteError(w, httpapi.Errorf(http.StatusBadRequest, httpapi.CodeInvalidArgument, "%v", err))
		return
	}
	s.slow.Record(r.Context(), string(body), time.Since(t0), len(res.Rows), evalEpoch, res.Explain)
	rows := make([][]string, 0, len(res.Rows))
	for _, row := range res.Rows {
		cells := make([]string, len(row))
		for i, term := range row {
			cells[i] = term.String()
		}
		rows = append(rows, cells)
	}
	// "epoch" is the epoch of the data the rows were computed from: the
	// snapshot's, or — under ?saturate with a staleness tolerance — the
	// epoch of the cached saturated graph.
	payload := map[string]any{
		"vars":      res.Vars,
		"rows":      rows,
		"count":     len(rows),
		"truncated": res.Truncated,
		"epoch":     evalEpoch,
	}
	if saturated {
		payload["saturate_epoch"] = evalEpoch
	}
	if opts.Pruner != nil {
		payload["prune_epoch"] = pruneEpoch
	}
	if res.Explain != nil && wantExplain {
		payload["explain"] = res.Explain
	}
	httpapi.WriteJSON(w, payload)
}

// saturatedIndex returns G∞, its index and the epoch it reflects, cached
// across requests and rebuilt when the epoch moves beyond the staleness
// tolerance or the serving instance was swapped by a replication
// bootstrap.
func (s *server) saturatedIndex(snap *rdfsum.LiveSnapshot, inst uint64) (*rdfsum.Graph, *store.Index, uint64) {
	s.satMu.Lock()
	defer s.satMu.Unlock()
	if s.satGraph == nil || s.satInst != inst || s.satEpoch+s.maxStale < snap.Epoch {
		s.satGraph = rdfsum.Saturate(snap.Graph)
		s.satIx = rdfsum.NewIndex(s.satGraph)
		s.satInst = inst
		s.satEpoch = snap.Epoch
	}
	return s.satGraph, s.satIx, s.satEpoch
}
