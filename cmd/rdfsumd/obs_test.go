package main

import (
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"rdfsum"
	"rdfsum/internal/obs"
)

func scrapeMetrics(t *testing.T, ts *httptest.Server) (string, *http.Response) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body), resp
}

// TestMetricsExpositionWellFormed runs the full scrape through the
// exposition linter: every family has HELP+TYPE, no duplicate series,
// counters end _total, histogram buckets are monotone and +Inf-closed.
func TestMetricsExpositionWellFormed(t *testing.T) {
	ts, _ := liveTestServer(t, rdfsum.GenerateBSBM(20))
	// Exercise a route so HTTP histograms have samples too.
	postQuery(t, ts.URL+"/v1/query", "SELECT ?s ?o WHERE { ?s ?p ?o . }")

	body, resp := scrapeMetrics(t, ts)
	if ct := resp.Header.Get("Content-Type"); ct != obs.ContentType {
		t.Errorf("Content-Type = %q, want %q", ct, obs.ContentType)
	}
	if err := obs.LintExposition(strings.NewReader(body)); err != nil {
		t.Errorf("exposition lint: %v\n%s", err, body)
	}
}

// TestLegacyMetricSeriesNamesPreserved pins the migration contract: every
// series the hand-rolled /metrics handler used to emit is still present
// under the identical name after the registry rewrite.
func TestLegacyMetricSeriesNamesPreserved(t *testing.T) {
	ts, _ := liveTestServer(t, rdfsum.GenerateBSBM(20))
	body, _ := scrapeMetrics(t, ts)
	legacy := []string{
		"rdfsum_epoch ",
		"rdfsum_triples ",
		"rdfsum_durable ",
		"rdfsum_read_only ",
		"rdfsum_generation ",
		"rdfsum_wal_bytes ",
		"rdfsum_wal_records ",
		"rdfsum_index_runs ",
		"rdfsum_index_tombstones ",
		"rdfsum_added_total ",
		"rdfsum_deleted_total ",
		"rdfsum_ingest_queue_depth ",
		"rdfsum_ingest_queue_max_depth ",
		"rdfsum_ingest_queue_bytes ",
		"rdfsum_ingest_queue_max_bytes ",
		"rdfsum_ingest_queue_rejected_total ",
		`rdfsum_summary_epoch{kind="weak",mode="maintained"}`,
		`rdfsum_summary_staleness{kind="weak",mode="maintained"}`,
	}
	for _, name := range legacy {
		if !strings.Contains(body, name) {
			t.Errorf("legacy series %q missing from /metrics", strings.TrimSpace(name))
		}
	}
}

// TestEveryV1RouteReportsLatencyHistogram exercises each /v1 route and
// asserts the scrape carries a per-route duration histogram for it.
func TestEveryV1RouteReportsLatencyHistogram(t *testing.T) {
	ts, _ := liveTestServer(t, rdfsum.GenerateBSBM(10))

	do := func(method, path, body string) {
		t.Helper()
		req, err := http.NewRequest(method, ts.URL+path, strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
	}
	do("GET", "/v1/healthz", "")
	do("GET", "/v1/stats", "")
	do("GET", "/v1/summary?kind=weak", "")
	do("GET", "/v1/profile", "")
	do("POST", "/v1/query", "SELECT ?s WHERE { ?s ?p ?o . }")
	do("POST", "/v1/triples", ntBody(9000, 3))
	do("DELETE", "/v1/triples", ntBody(9000, 3))
	do("POST", "/v1/compact", "")
	do("GET", "/v1/replication", "")
	do("GET", "/v1/metrics", "")

	body, _ := scrapeMetrics(t, ts)
	routes := []string{
		"/v1/healthz", "/v1/stats", "/v1/summary", "/v1/profile",
		"/v1/query", "/v1/triples", "/v1/compact", "/v1/replication",
		"/v1/metrics",
	}
	for _, route := range routes {
		series := `rdfsum_http_request_duration_seconds_bucket{route="` + route + `"`
		if !strings.Contains(body, series) {
			t.Errorf("no latency histogram for route %s", route)
		}
	}
	// Both write methods of /v1/triples are distinguished by the method
	// label on the shared route.
	for _, method := range []string{"POST", "DELETE"} {
		series := `{route="/v1/triples",method="` + method + `"`
		if !strings.Contains(body, series) {
			t.Errorf("no %s sample for /v1/triples", method)
		}
	}
}

// TestServerRequestIDRoundTrip drives the middleware through the real
// server handler: a supplied ID is echoed, a missing one is generated.
func TestServerRequestIDRoundTrip(t *testing.T) {
	ts := testServer(t)
	req, err := http.NewRequest("GET", ts.URL+"/v1/stats", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(obs.HeaderRequestID, "trace-me-7")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get(obs.HeaderRequestID); got != "trace-me-7" {
		t.Errorf("echoed request ID = %q, want trace-me-7", got)
	}

	resp, err = http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get(obs.HeaderRequestID); len(got) != 16 {
		t.Errorf("generated request ID = %q, want 16 hex chars", got)
	}
}

// TestSlowQueryLogThresholdServer runs queries through a server armed
// with a slow-query log and checks the threshold gates recording.
func TestSlowQueryLogThresholdServer(t *testing.T) {
	run := func(threshold time.Duration) string {
		t.Helper()
		var logs syncLogBuffer
		logger, err := obs.NewLogger(&logs, slog.LevelInfo, "text")
		if err != nil {
			t.Fatal(err)
		}
		srv, err := newServer(serverConfig{
			liveDir:   t.TempDir(),
			workers:   1,
			logger:    logger,
			slowQuery: threshold,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.close() }) //nolint:errcheck
		if err := srv.lv.AddBatch(rdfsum.GenerateBSBM(10).Decode()); err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv.handler())
		t.Cleanup(ts.Close)
		postQuery(t, ts.URL+"/v1/query", "SELECT ?s ?o WHERE { ?s ?p ?o . }")
		return logs.String()
	}

	slow := run(time.Nanosecond) // everything is slower than 1ns
	if !strings.Contains(slow, "slow query") {
		t.Errorf("1ns threshold recorded nothing:\n%s", slow)
	}
	for _, want := range []string{"duration=", "rows=", "epoch=", "plan="} {
		if !strings.Contains(slow, want) {
			t.Errorf("slow-query entry missing %s:\n%s", want, slow)
		}
	}

	fast := run(time.Hour) // nothing is slower than an hour
	if strings.Contains(fast, "slow query") {
		t.Errorf("1h threshold recorded a slow query:\n%s", fast)
	}
}

// TestSlowQueryCaptureDoesNotLeakExplain: arming the slow-query log
// forces plan capture internally, but the HTTP payload only carries the
// explain block when the client asked for it.
func TestSlowQueryCaptureDoesNotLeakExplain(t *testing.T) {
	logger := slog.New(slog.NewTextHandler(io.Discard, nil))
	srv, err := newServer(serverConfig{
		liveDir:   t.TempDir(),
		workers:   1,
		logger:    logger,
		slowQuery: time.Nanosecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.close() }) //nolint:errcheck
	if err := srv.lv.AddBatch(rdfsum.GenerateBSBM(10).Decode()); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.handler())
	t.Cleanup(ts.Close)

	resp, err := http.Post(ts.URL+"/v1/query", "text/plain",
		strings.NewReader("SELECT ?s WHERE { ?s ?p ?o . }"))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if strings.Contains(string(body), `"explain"`) {
		t.Errorf("unrequested explain leaked into the payload:\n%s", body)
	}

	resp, err = http.Post(ts.URL+"/v1/query?explain=true", "text/plain",
		strings.NewReader("SELECT ?s WHERE { ?s ?p ?o . }"))
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), `"explain"`) {
		t.Errorf("requested explain missing from the payload:\n%s", body)
	}
}

// TestDebugHandlerServesVarsAndPprof covers the private -debug-addr mux.
func TestDebugHandlerServesVarsAndPprof(t *testing.T) {
	srv := newServerFromGraph(rdfsum.GenerateBSBM(5))
	ts := httptest.NewServer(srv.debugHandler())
	t.Cleanup(ts.Close)

	resp, err := http.Get(ts.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	// One valid JSON document merging the instance registry with the
	// process-wide one (two concatenated objects would fail to decode).
	var vars map[string]float64
	if err := json.Unmarshal(body, &vars); err != nil {
		t.Fatalf("/debug/vars is not one JSON object: %v\n%s", err, body)
	}
	if resp.StatusCode != http.StatusOK || vars["rdfsum_triples"] <= 0 {
		t.Errorf("/debug/vars status %d, rdfsum_triples = %v", resp.StatusCode, vars["rdfsum_triples"])
	}
	if _, ok := vars["rdfsum_query_compile_seconds_count"]; !ok {
		t.Errorf("/debug/vars missing process-wide series:\n%s", body)
	}

	resp, err = http.Get(ts.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/debug/pprof/cmdline status = %d", resp.StatusCode)
	}

	// The public handler must NOT expose pprof.
	pub := httptest.NewServer(srv.handler())
	t.Cleanup(pub.Close)
	resp, err = http.Get(pub.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("public mux serves pprof: status %d", resp.StatusCode)
	}
}

// syncLogBuffer is a goroutine-safe io.Writer for capturing slog output
// in tests (the HTTP server logs from handler goroutines).
type syncLogBuffer struct {
	logBuffer
}

func (b *syncLogBuffer) Write(p []byte) (int, error) {
	b.add(strings.TrimSuffix(string(p), "\n"))
	return len(p), nil
}

// BenchmarkMetricsMiddleware measures the observability middleware's
// overhead against the real request path: the same query served by the
// bare mux vs the instrumented handler. The delta is the full per-
// request cost (request ID, histograms, log line).
func BenchmarkMetricsMiddleware(b *testing.B) {
	srv := newServerFromGraph(rdfsum.GenerateBSBM(20))
	srv.logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	const q = "SELECT ?s ?o WHERE { ?s ?p ?o . }"

	run := func(b *testing.B, h http.Handler) {
		b.Helper()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			req := httptest.NewRequest("POST", "/v1/query?limit=100", strings.NewReader(q))
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			if rec.Code != http.StatusOK {
				b.Fatalf("query status = %d: %s", rec.Code, rec.Body.String())
			}
		}
	}
	b.Run("bare", func(b *testing.B) { run(b, srv.mux()) })
	b.Run("instrumented", func(b *testing.B) { run(b, srv.handler()) })
}
