package main

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rdfsum"
	"rdfsum/client"
)

// TestE2EStreamingIngest is the `make ingest-smoke` check: a cold
// gzipped Turtle dump boots a real rdfsumd process straight into
// serving summaries and queries — compressed input is decoded as a
// streaming stage into the parallel loader, never materialized — then a
// zstd-compressed streaming upload through the typed client lands more
// triples on the running server.
func TestE2EStreamingIngest(t *testing.T) {
	if testing.Short() {
		t.Skip("process-level e2e test; skipped in -short mode")
	}
	bin := buildRdfsumd(t)
	ctx := context.Background()

	g := rdfsum.GenerateBSBM(30)
	dump := filepath.Join(t.TempDir(), "dump.ttl.gz")
	f, err := os.Create(dump)
	if err != nil {
		t.Fatal(err)
	}
	zw, err := rdfsum.NewCompressionWriter(f, rdfsum.CompressionGzip)
	if err != nil {
		t.Fatal(err)
	}
	if err := rdfsum.WriteTurtle(zw, g.Decode()); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	url, _ := startDaemon(t, bin, "-in", dump, "-addr", "127.0.0.1:0")
	cl, err := client.New(url)
	if err != nil {
		t.Fatal(err)
	}

	st, err := cl.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Triples != g.NumEdges() {
		t.Fatalf("server serves %d triples from the gzipped dump, want %d", st.Triples, g.NumEdges())
	}
	sum, err := cl.Summary(ctx, "weak")
	if err != nil {
		t.Fatal(err)
	}
	if sum.DataNodes <= 0 || sum.AllEdges <= 0 {
		t.Fatalf("weak summary from compressed boot is empty: %+v", sum)
	}
	if _, err := cl.Query(ctx, "SELECT ?s ?o WHERE { ?s ?p ?o . }", &client.QueryOptions{Limit: 5}); err != nil {
		t.Fatal(err)
	}

	// Compressed streaming upload against the running server.
	const extra = 120
	res, err := cl.IngestStream(ctx, strings.NewReader(ntBody(1_000_000, extra)),
		&client.IngestOptions{Compression: rdfsum.CompressionZstd})
	if err != nil {
		t.Fatal(err)
	}
	if res.Added != extra {
		t.Fatalf("compressed upload added %d triples, want %d", res.Added, extra)
	}
	st2, err := cl.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Triples != st.Triples+extra {
		t.Fatalf("triples after upload = %d, want %d", st2.Triples, st.Triples+extra)
	}
}
