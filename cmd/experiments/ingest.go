package main

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"text/tabwriter"
	"time"

	"rdfsum"
)

// printIngest measures the load-and-encode path — the precondition the
// paper's §6 pipeline pays before any summarization — comparing the
// sequential loader against the parallel pipeline at growing worker
// counts. Datasets are generated, serialized to a temporary N-Triples
// file, and loaded back from disk like a real ingestion would be.
func printIngest(targets []int, dataset string, seed uint64) {
	workerCounts := []int{1, 2, 4, 8}
	if n := runtime.GOMAXPROCS(0); n > 8 {
		workerCounts = append(workerCounts, n)
	}

	title := fmt.Sprintf("Ingestion: N-Triples load+encode time (%s), sequential vs parallel workers", datasetName)
	fmt.Printf("\n%s\n%s\n", title, strings.Repeat("-", len(title)))
	tw := tabwriter.NewWriter(os.Stdout, 4, 4, 3, ' ', tabwriter.AlignRight)
	fmt.Fprint(tw, "triples\tMB\tsequential\t")
	for _, w := range workerCounts {
		fmt.Fprintf(tw, "w=%d\t", w)
	}
	fmt.Fprintln(tw, "best speedup\t")

	dir, err := os.MkdirTemp("", "rdfsum-ingest")
	if err != nil {
		fatal(err)
	}
	defer os.RemoveAll(dir)
	// fatal os.Exits, skipping the deferred cleanup — and data.nt is
	// multi-GB at the larger targets, so remove the directory first.
	die := func(err error) {
		os.RemoveAll(dir) //nolint:errcheck
		fatal(err)
	}

	for _, target := range targets {
		g, _, _ := generate(dataset, target, seed)
		path := filepath.Join(dir, "data.nt")
		f, err := os.Create(path)
		if err != nil {
			die(err)
		}
		if err := rdfsum.WriteNTriples(f, g.Decode()); err != nil {
			die(err)
		}
		if err := f.Close(); err != nil {
			die(err)
		}
		info, err := os.Stat(path)
		if err != nil {
			die(err)
		}

		seqStart := time.Now()
		seq, err := rdfsum.LoadFile(path, &rdfsum.LoadOptions{Workers: 1})
		if err != nil {
			die(err)
		}
		seqTime := time.Since(seqStart)

		fmt.Fprintf(tw, "%d\t%.1f\t%s\t", g.NumEdges(), float64(info.Size())/(1<<20),
			seqTime.Round(time.Millisecond))
		best := seqTime
		for _, w := range workerCounts {
			start := time.Now()
			par, err := rdfsum.LoadFile(path, &rdfsum.LoadOptions{Workers: w})
			if err != nil {
				die(err)
			}
			d := time.Since(start)
			if par.NumEdges() != seq.NumEdges() || par.Dict().Len() != seq.Dict().Len() {
				die(fmt.Errorf("parallel load (w=%d) diverged: %d triples / %d terms vs %d / %d",
					w, par.NumEdges(), par.Dict().Len(), seq.NumEdges(), seq.Dict().Len()))
			}
			if d < best {
				best = d
			}
			fmt.Fprintf(tw, "%s\t", d.Round(time.Millisecond))
		}
		fmt.Fprintf(tw, "%.2fx\t\n", float64(seqTime)/float64(best))
	}
	tw.Flush() //nolint:errcheck
}
