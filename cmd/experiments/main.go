// Command experiments regenerates the paper's evaluation (§7): for a sweep
// of BSBM dataset sizes it builds the four summaries and prints the series
// behind Figure 11 (data nodes / all nodes), Figure 12 (data edges / all
// edges) and Figure 13 (summarization time), plus the in-text compactness
// and ratio metrics. See EXPERIMENTS.md for paper-vs-measured results.
//
// Usage:
//
//	experiments                      # full sweep, all figures
//	experiments -fig 13 -sizes 50000,100000,500000
//	experiments -csv results.csv
//
// The paper sweeps 10M–100M triples on a Postgres-backed Java prototype;
// the default sweep here is 50k–2M triples in-process. Raise -sizes for
// larger runs; everything scales linearly.
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"text/tabwriter"
	"time"

	"rdfsum"
	"rdfsum/internal/bsbm"
	"rdfsum/internal/lubm"
)

// kinds are the summaries the paper evaluates (§7), enumerated from the
// library's kind table.
var kinds = rdfsum.PaperKinds

// datasetName labels the printed tables with the active workload.
var datasetName = "BSBM"

type row struct {
	triples int
	stats   map[rdfsum.Kind]rdfsum.Stats
	times   map[rdfsum.Kind]time.Duration
}

func main() {
	fig := flag.String("fig", "all", "figure to print: 11 | 12 | 13 | compact | ratios | pruning | load | all")
	sizes := flag.String("sizes", "50000,100000,250000,500000,1000000,2000000",
		"comma-separated target triple counts")
	seed := flag.Uint64("seed", 42, "dataset seed")
	dataset := flag.String("dataset", "bsbm", "workload: bsbm (the paper's) or lubm")
	csvPath := flag.String("csv", "", "also write every measurement to a CSV file")
	flag.Parse()

	var targets []int
	for _, s := range strings.Split(*sizes, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n <= 0 {
			fatal(fmt.Errorf("bad size %q", s))
		}
		targets = append(targets, n)
	}

	datasetName = strings.ToUpper(*dataset)

	if *fig == "pruning" {
		printPruning(targets, *dataset, *seed)
		return
	}
	if *fig == "load" {
		printIngest(targets, *dataset, *seed)
		return
	}

	rows := make([]row, 0, len(targets))
	for _, target := range targets {
		genStart := time.Now()
		g, scale, unit := generate(*dataset, target, *seed)
		fmt.Fprintf(os.Stderr, "generated %d triples (%d %s) in %v\n",
			g.NumEdges(), scale, unit, time.Since(genStart).Round(time.Millisecond))

		r := row{triples: g.NumEdges(),
			stats: map[rdfsum.Kind]rdfsum.Stats{},
			times: map[rdfsum.Kind]time.Duration{}}
		for _, kind := range kinds {
			start := time.Now()
			s, err := rdfsum.Summarize(g, kind)
			if err != nil {
				fatal(err)
			}
			r.times[kind] = time.Since(start)
			r.stats[kind] = s.Stats
		}
		rows = append(rows, r)
	}

	switch *fig {
	case "11":
		printFig11(rows)
	case "12":
		printFig12(rows)
	case "13":
		printFig13(rows)
	case "compact":
		printCompact(rows)
	case "ratios":
		printRatios(rows)
	case "all":
		printFig11(rows)
		printFig12(rows)
		printFig13(rows)
		printCompact(rows)
		printRatios(rows)
	default:
		fatal(fmt.Errorf("unknown figure %q", *fig))
	}

	if *csvPath != "" {
		if err := writeCSV(*csvPath, rows); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *csvPath)
	}
}

// generate builds the requested workload at roughly target triples,
// returning the graph, the scale factor used and its unit name.
func generate(dataset string, target int, seed uint64) (*rdfsum.Graph, int, string) {
	switch dataset {
	case "bsbm":
		products := bsbm.EstimateProducts(target)
		cfg := bsbm.DefaultConfig(products)
		cfg.Seed = seed
		return bsbm.GenerateGraph(cfg), products, "products"
	case "lubm":
		unis := lubm.EstimateUniversities(target)
		cfg := lubm.DefaultConfig(unis)
		cfg.Seed = seed
		return lubm.GenerateGraph(cfg), unis, "universities"
	default:
		fatal(fmt.Errorf("unknown dataset %q (want bsbm or lubm)", dataset))
		return nil, 0, ""
	}
}

func header(title string) *tabwriter.Writer {
	fmt.Printf("\n%s\n%s\n", title, strings.Repeat("-", len(title)))
	tw := tabwriter.NewWriter(os.Stdout, 4, 4, 3, ' ', tabwriter.AlignRight)
	fmt.Fprint(tw, "triples\t")
	for _, k := range kinds {
		fmt.Fprintf(tw, "%s\t", k)
	}
	fmt.Fprintln(tw)
	return tw
}

func series(title string, rows []row, value func(rdfsum.Stats, time.Duration) string) {
	tw := header(title)
	for _, r := range rows {
		fmt.Fprintf(tw, "%d\t", r.triples)
		for _, k := range kinds {
			fmt.Fprintf(tw, "%s\t", value(r.stats[k], r.times[k]))
		}
		fmt.Fprintln(tw)
	}
	tw.Flush() //nolint:errcheck
}

func printFig11(rows []row) {
	series(fmt.Sprintf("Figure 11 (top): number of data nodes in %s summaries", datasetName), rows,
		func(s rdfsum.Stats, _ time.Duration) string { return strconv.Itoa(s.DataNodes) })
	series(fmt.Sprintf("Figure 11 (bottom): number of all nodes (data + class) in %s summaries", datasetName), rows,
		func(s rdfsum.Stats, _ time.Duration) string { return strconv.Itoa(s.AllNodes) })
}

func printFig12(rows []row) {
	series(fmt.Sprintf("Figure 12 (top): number of data edges in %s summaries", datasetName), rows,
		func(s rdfsum.Stats, _ time.Duration) string { return strconv.Itoa(s.DataEdges) })
	series(fmt.Sprintf("Figure 12 (bottom): number of all edges in %s summaries", datasetName), rows,
		func(s rdfsum.Stats, _ time.Duration) string { return strconv.Itoa(s.AllEdges) })
}

func printFig13(rows []row) {
	series(fmt.Sprintf("Figure 13: summarization time (%s)", datasetName), rows,
		func(_ rdfsum.Stats, d time.Duration) string { return d.Round(time.Millisecond).String() })
}

func printCompact(rows []row) {
	series("Compactness (§7): |H|e / |G|e (paper: at most 0.028, best 2.8e-4)", rows,
		func(s rdfsum.Stats, _ time.Duration) string {
			return fmt.Sprintf("%.2e", s.CompressionRatio())
		})
}

func printRatios(rows []row) {
	title := "Ratios (§7): typed/weak data-node factor (paper: 5-50x), class nodes, data-node reduction"
	fmt.Printf("\n%s\n%s\n", title, strings.Repeat("-", len(title)))
	tw := tabwriter.NewWriter(os.Stdout, 4, 4, 3, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "triples\tTW/W nodes\tTS/S nodes\tclass nodes\tW reduction\tS reduction\t")
	for _, r := range rows {
		w, s := r.stats[rdfsum.Weak], r.stats[rdfsum.Strong]
		tw2, ts := r.stats[rdfsum.TypedWeak], r.stats[rdfsum.TypedStrong]
		fmt.Fprintf(tw, "%d\t%.1fx\t%.1fx\t%d\t%.0fx\t%.0fx\t\n",
			r.triples,
			ratio(tw2.DataNodes, w.DataNodes), ratio(ts.DataNodes, s.DataNodes),
			w.ClassNodes, w.DataNodeReduction(), s.DataNodeReduction())
	}
	tw.Flush() //nolint:errcheck
}

func ratio(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

func writeCSV(path string, rows []row) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := csv.NewWriter(f)
	if err := w.Write([]string{"triples", "kind", "data_nodes", "all_nodes", "class_nodes",
		"data_edges", "all_edges", "compression", "build_ms"}); err != nil {
		return err
	}
	for _, r := range rows {
		for _, k := range kinds {
			s := r.stats[k]
			rec := []string{
				strconv.Itoa(r.triples), k.String(),
				strconv.Itoa(s.DataNodes), strconv.Itoa(s.AllNodes), strconv.Itoa(s.ClassNodes),
				strconv.Itoa(s.DataEdges), strconv.Itoa(s.AllEdges),
				fmt.Sprintf("%.3e", s.CompressionRatio()),
				fmt.Sprintf("%.1f", float64(r.times[k].Microseconds())/1000),
			}
			if err := w.Write(rec); err != nil {
				return err
			}
		}
	}
	w.Flush()
	if err := w.Error(); err != nil {
		return err
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
