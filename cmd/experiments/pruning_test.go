package main

import (
	"math/rand/v2"
	"testing"

	"rdfsum"
	"rdfsum/internal/query"
	"rdfsum/internal/rdf"
)

func TestGenerateWorkloads(t *testing.T) {
	for _, ds := range []string{"bsbm", "lubm"} {
		g, scale, unit := generate(ds, 20000, 7)
		if g == nil || scale <= 0 || unit == "" {
			t.Fatalf("generate(%s) = %v/%d/%q", ds, g, scale, unit)
		}
		if g.NumEdges() < 10000 || g.NumEdges() > 40000 {
			t.Errorf("generate(%s, 20000) produced %d triples", ds, g.NumEdges())
		}
	}
}

func TestCorrupt(t *testing.T) {
	g := rdfsum.GenerateBSBM(20)
	props := g.DistinctDataProperties()
	rng := rand.New(rand.NewPCG(1, 2))
	q := query.MustParse(`PREFIX bsbm: <http://bsbm.example.org/vocabulary/>
		SELECT ?o WHERE { ?o bsbm:price ?p . ?o a bsbm:Offer }`)

	c := corrupt(q, props, g, rng)
	if c == nil {
		t.Fatal("corrupt returned nil for a corruptible query")
	}
	// The original is untouched.
	if q.Patterns[0].P.Value.Value != "http://bsbm.example.org/vocabulary/price" {
		t.Error("corrupt mutated the original query")
	}
	// Exactly the non-τ pattern changed, to a different property.
	if c.Patterns[0].P.Value == q.Patterns[0].P.Value {
		t.Error("corrupt did not change the property")
	}
	if c.Patterns[1].P.Value.Value != rdf.RDFType {
		t.Error("corrupt must not touch τ patterns")
	}

	// Queries with no corruptible pattern return nil.
	tOnly := query.MustParse(`PREFIX bsbm: <http://bsbm.example.org/vocabulary/>
		SELECT ?x WHERE { ?x a bsbm:Offer }`)
	if corrupt(tOnly, props, g, rng) != nil {
		t.Error("corrupt of a τ-only query should be nil")
	}
}
