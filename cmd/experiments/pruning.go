package main

import (
	"fmt"
	"math/rand/v2"
	"os"
	"strings"
	"text/tabwriter"

	"rdfsum"
	"rdfsum/internal/dict"
	"rdfsum/internal/query"
	"rdfsum/internal/rdf"
	"rdfsum/internal/store"
)

// printPruning measures the summaries as static emptiness oracles — the
// query-pruning use case the paper motivates ("querying a summary of a
// graph should reflect whether the query has some answers against this
// graph"):
//
//   - Soundness (must be 100%, Prop. 1): queries non-empty on G∞ are never
//     pruned by a summary.
//   - Pruning power: among queries that are empty on G∞ (obtained by
//     corrupting extracted queries), the fraction each summary proves
//     empty. Summaries over-approximate connectivity, so some empty
//     queries slip through — this measures the accuracy trade-off in
//     practice.
func printPruning(targets []int, dataset string, seed uint64) {
	const perGraph = 60

	title := "Pruning power: % of G∞-empty RBGP queries proven empty by each summary (soundness must stay 100%)"
	fmt.Printf("\n%s\n%s\n", title, strings.Repeat("-", len(title)))
	tw := tabwriter.NewWriter(os.Stdout, 4, 4, 3, ' ', tabwriter.AlignRight)
	fmt.Fprint(tw, "triples\tsound\t")
	for _, k := range kinds {
		fmt.Fprintf(tw, "%s\t", k)
	}
	fmt.Fprintln(tw)

	for _, target := range targets {
		g, _, _ := generate(dataset, target, seed)
		inf := rdfsum.Saturate(g)
		infIx := store.NewIndex(inf)
		props := g.DistinctDataProperties()

		// The library-level pruning gate (query.Pruner) each summary kind
		// provides to the engine — the same gate rdfsumd serves with.
		pruners := map[rdfsum.Kind]*rdfsum.QueryPruner{}
		for _, k := range kinds {
			s, err := rdfsum.Summarize(g, k)
			if err != nil {
				fatal(err)
			}
			pruners[k] = rdfsum.NewQueryPruner(s)
		}

		rng := query.NewRNG(seed + uint64(target))
		sound := true
		pruned := map[rdfsum.Kind]int{}
		emptyQueries := 0
		for i := 0; i < perGraph; i++ {
			q, ok := query.ExtractRBGP(inf, rng, 3)
			if !ok {
				break
			}
			// Soundness check on the original (non-empty) query: a query
			// with answers on G∞ must never be pruned (Prop. 1).
			for _, k := range kinds {
				if pruners[k].ProvablyEmpty(q) {
					sound = false
				}
			}
			// Corrupt one pattern's property; keep only queries that
			// become empty on G∞.
			corrupted := corrupt(q, props, g, rng)
			if corrupted == nil {
				continue
			}
			found, err := query.Ask(inf, infIx, corrupted)
			if err != nil {
				fatal(err)
			}
			if found {
				continue
			}
			emptyQueries++
			for _, k := range kinds {
				if pruners[k].ProvablyEmpty(corrupted) {
					pruned[k]++
				}
			}
		}

		fmt.Fprintf(tw, "%d\t%v\t", g.NumEdges(), sound)
		for _, k := range kinds {
			if emptyQueries == 0 {
				fmt.Fprint(tw, "n/a\t")
				continue
			}
			fmt.Fprintf(tw, "%.0f%%\t", 100*float64(pruned[k])/float64(emptyQueries))
		}
		fmt.Fprintln(tw)
	}
	tw.Flush() //nolint:errcheck
}

// corrupt replaces one non-τ pattern's property with a different property
// from the graph, yielding a structurally plausible but likely-empty
// query. Returns nil when the query has no corruptible pattern.
func corrupt(q *query.Query, props []dict.ID, g *rdfsum.Graph, rng *rand.Rand) *query.Query {
	if len(props) < 2 {
		return nil
	}
	var candidates []int
	for i, p := range q.Patterns {
		if !p.P.IsVar && p.P.Value.Value != rdf.RDFType {
			candidates = append(candidates, i)
		}
	}
	if len(candidates) == 0 {
		return nil
	}
	idx := candidates[rng.IntN(len(candidates))]
	out := &query.Query{
		Distinguished: q.Distinguished,
		Patterns:      append([]query.Pattern(nil), q.Patterns...),
	}
	current := out.Patterns[idx].P.Value
	for tries := 0; tries < 8; tries++ {
		replacement := g.Dict().Term(props[rng.IntN(len(props))])
		if replacement != current {
			out.Patterns[idx].P = query.Const(replacement)
			return out
		}
	}
	return nil
}
