package main

import (
	"os"
	"path/filepath"
	"testing"

	"rdfsum"
)

func TestLoadSaveRoundTrips(t *testing.T) {
	dir := t.TempDir()
	g := rdfsum.GenerateBSBM(10)

	// N-Triples path.
	nt := filepath.Join(dir, "g.nt")
	if err := save(nt, g); err != nil {
		t.Fatal(err)
	}
	back, err := load(nt)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumEdges() != g.NumEdges() {
		t.Errorf("nt round trip: %d != %d", back.NumEdges(), g.NumEdges())
	}

	// Snapshot path.
	snap := filepath.Join(dir, "g.snapshot")
	if err := save(snap, g); err != nil {
		t.Fatal(err)
	}
	back, err = load(snap)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumEdges() != g.NumEdges() {
		t.Errorf("snapshot round trip: %d != %d", back.NumEdges(), g.NumEdges())
	}

	// Turtle path.
	ttl := filepath.Join(dir, "g.ttl")
	doc := "@prefix ex: <http://ex.org/> .\nex:s ex:p ex:o ; a ex:C .\n"
	if err := os.WriteFile(ttl, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	tg, err := load(ttl)
	if err != nil {
		t.Fatal(err)
	}
	if tg.NumEdges() != 2 {
		t.Errorf("ttl load: %d edges, want 2", tg.NumEdges())
	}

	// Missing -in.
	if _, err := load(""); err == nil {
		t.Error("load(\"\") must fail")
	}
}

func TestShortName(t *testing.T) {
	cases := map[string]string{
		"http://x/a#frag": "frag",
		"http://x/last":   "last",
		"urn:x:y":         "y",
		"plain":           "plain",
		"http://x/":       "http://x/",
	}
	for in, want := range cases {
		if got := shortName(in); got != want {
			t.Errorf("shortName(%q) = %q, want %q", in, got, want)
		}
	}
}
