package main

import (
	"os"
	"path/filepath"
	"testing"

	"rdfsum"
)

func TestLoadSaveRoundTrips(t *testing.T) {
	dir := t.TempDir()
	g := rdfsum.GenerateBSBM(10)

	// N-Triples path.
	nt := filepath.Join(dir, "g.nt")
	if err := save(nt, g); err != nil {
		t.Fatal(err)
	}
	back, err := load(nt)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumEdges() != g.NumEdges() {
		t.Errorf("nt round trip: %d != %d", back.NumEdges(), g.NumEdges())
	}

	// Snapshot path.
	snap := filepath.Join(dir, "g.snapshot")
	if err := save(snap, g); err != nil {
		t.Fatal(err)
	}
	back, err = load(snap)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumEdges() != g.NumEdges() {
		t.Errorf("snapshot round trip: %d != %d", back.NumEdges(), g.NumEdges())
	}

	// Turtle path.
	ttl := filepath.Join(dir, "g.ttl")
	doc := "@prefix ex: <http://ex.org/> .\nex:s ex:p ex:o ; a ex:C .\n"
	if err := os.WriteFile(ttl, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	tg, err := load(ttl)
	if err != nil {
		t.Fatal(err)
	}
	if tg.NumEdges() != 2 {
		t.Errorf("ttl load: %d edges, want 2", tg.NumEdges())
	}

	// Missing -in.
	if _, err := load(""); err == nil {
		t.Error("load(\"\") must fail")
	}
}

func TestShortName(t *testing.T) {
	cases := map[string]string{
		"http://x/a#frag": "frag",
		"http://x/last":   "last",
		"urn:x:y":         "y",
		"plain":           "plain",
		"http://x/":       "http://x/",
	}
	for in, want := range cases {
		if got := shortName(in); got != want {
			t.Errorf("shortName(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestCmdIngest: the ingest subcommand streams an N-Triples file into a
// live store in WAL batches; reopening recovers everything, and -compact
// folds the log into a snapshot generation.
func TestCmdIngest(t *testing.T) {
	dir := t.TempDir()
	g := rdfsum.GenerateBSBM(5)
	nt := filepath.Join(dir, "g.nt")
	if err := save(nt, g); err != nil {
		t.Fatal(err)
	}
	store := filepath.Join(dir, "store")
	if err := cmdIngest([]string{"-wal", store, "-in", nt, "-batch", "100"}); err != nil {
		t.Fatal(err)
	}
	// A second file appends on top of the first.
	if err := cmdIngest([]string{"-wal", store, "-in", nt, "-batch", "37", "-compact"}); err != nil {
		t.Fatal(err)
	}
	lv, err := rdfsum.OpenLive(store, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer lv.Close()
	if got, want := lv.Snapshot().Graph.NumEdges(), 2*g.NumEdges(); got != want {
		t.Fatalf("store holds %d triples after two ingests, want %d", got, want)
	}

	// Flag validation.
	if err := cmdIngest([]string{"-in", nt}); err == nil {
		t.Error("ingest without -wal must fail")
	}
	if err := cmdIngest([]string{"-wal", store}); err == nil {
		t.Error("ingest without -in must fail")
	}
}
