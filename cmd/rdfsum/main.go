// Command rdfsum summarizes, saturates, inspects and queries RDF graphs.
//
// Usage:
//
//	rdfsum summarize -in data.nt -kind weak [-out summary.nt] [-dot summary.dot]
//	rdfsum summarize -in data.nt -all [-out summary.nt]   # every kind, one shared pass
//	rdfsum saturate  -in data.nt [-out saturated.nt]
//	rdfsum stats     -in data.nt [-kinds weak,strong,typed-weak,typed-strong]
//	rdfsum query     -in data.nt -q 'SELECT ?x WHERE { ... }' [-saturate] [-explain] [-limit N] [-prune kind|off]
//	rdfsum convert   -in data.nt -out data.snapshot
//	rdfsum inspect   data.snapshot
//	rdfsum ingest    -wal ./store -in data.nt [-batch N] [-delete] [-compact] [-nosync] [-index-fanout N]
//
// The query, stats and ingest subcommands also run against a live
// rdfsumd with -server URL (through the typed /v1 client) instead of a
// local graph:
//
//	rdfsum query  -server http://localhost:8176 -q 'SELECT ?x WHERE { ... }'
//	rdfsum stats  -server http://localhost:8176 -kinds weak
//	rdfsum ingest -server http://localhost:8176 -in data.nt [-delete]
//
// Inputs and outputs ending in .nt are N-Triples; anything else is the
// library's binary snapshot format.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"text/tabwriter"

	"rdfsum"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "summarize":
		err = cmdSummarize(os.Args[2:])
	case "saturate":
		err = cmdSaturate(os.Args[2:])
	case "stats":
		err = cmdStats(os.Args[2:])
	case "query":
		err = cmdQuery(os.Args[2:])
	case "convert":
		err = cmdConvert(os.Args[2:])
	case "inspect":
		err = cmdInspect(os.Args[2:])
	case "ingest":
		err = cmdIngest(os.Args[2:])
	case "cliques":
		err = cmdCliques(os.Args[2:])
	case "check":
		err = cmdCheck(os.Args[2:])
	case "profile":
		err = cmdProfile(os.Args[2:])
	case "-h", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "rdfsum: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "rdfsum:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `rdfsum — query-oriented RDF graph summarization

commands:
  summarize   build a summary (-kind %s, or -all for every kind at once)
  saturate    compute the RDFS saturation G∞
  stats       print graph and summary size statistics
  query       evaluate a SPARQL BGP query
  convert     convert between N-Triples and snapshot formats
  inspect     print a snapshot file's header, sections and CRCs
  ingest      append (or -delete) triples in a WAL-durable live store (-wal dir)
  cliques     print the source/target property cliques (Table 1 style)
  check       verify well-behavedness assumptions
  profile     print the dataset's entity kinds from its typed-weak summary
`, kindList())
}

// kindList renders the summary kinds for flag help, enumerated from the
// library's kind table instead of a hand-rolled list.
func kindList() string {
	names := make([]string, len(rdfsum.Kinds))
	for i, k := range rdfsum.Kinds {
		names[i] = k.String()
	}
	return strings.Join(names, "|")
}

// loadWorkers is the shared -workers setting: 0 loads N-Triples on all
// CPUs through the parallel pipeline, 1 forces the sequential path.
var loadWorkers int

// loadFlags registers the loading flags shared by every subcommand that
// reads a graph.
func loadFlags(fs *flag.FlagSet) {
	fs.IntVar(&loadWorkers, "workers", 0,
		"N-Triples load workers (0 = all CPUs, 1 = sequential)")
}

// load reads a graph from an N-Triples or Turtle file — optionally
// gzip/zstd-compressed, detected from the name (data.nt, dump.ttl.gz,
// …) — or a snapshot (anything else).
func load(path string) (*rdfsum.Graph, error) {
	if path == "" {
		return nil, fmt.Errorf("missing -in file")
	}
	if format, codec := rdfsum.DetectFile(path); format != rdfsum.FormatAuto || codec != rdfsum.CompressionNone {
		return rdfsum.LoadFile(path, &rdfsum.LoadOptions{Workers: loadWorkers})
	}
	return rdfsum.LoadSnapshot(path)
}

// save writes a graph as N-Triples (.nt), Turtle (.ttl) or a snapshot.
func save(path string, g *rdfsum.Graph) error {
	var write func(*os.File) error
	switch {
	case strings.HasSuffix(path, ".nt"):
		write = func(f *os.File) error { return rdfsum.WriteNTriples(f, g.Decode()) }
	case strings.HasSuffix(path, ".ttl"):
		write = func(f *os.File) error { return rdfsum.WriteTurtle(f, g.Decode()) }
	default:
		return rdfsum.SaveSnapshot(path, g)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func cmdSummarize(args []string) error {
	fs := flag.NewFlagSet("summarize", flag.ExitOnError)
	in := fs.String("in", "", "input graph (.nt or snapshot)")
	kindName := fs.String("kind", "weak", "summary kind ("+kindList()+")")
	all := fs.Bool("all", false, "emit every summary kind in one pass (outputs get a per-kind suffix)")
	out := fs.String("out", "", "write the summary graph (.nt or snapshot)")
	dotOut := fs.String("dot", "", "write a Graphviz rendering of the summary")
	saturateFirst := fs.Bool("saturate", false, "summarize the saturation G∞ instead of G")
	loadFlags(fs)
	fs.Parse(args) //nolint:errcheck // ExitOnError

	kinds := rdfsum.Kinds
	if !*all {
		kind, err := rdfsum.ParseKind(*kindName)
		if err != nil {
			return err
		}
		kinds = []rdfsum.Kind{kind}
	}
	g, err := load(*in)
	if err != nil {
		return err
	}
	if *saturateFirst {
		g = rdfsum.Saturate(g)
	}
	summaries, err := summarizeKinds(g, kinds)
	if err != nil {
		return err
	}
	for _, kind := range kinds {
		s := summaries[kind]
		printStats(os.Stdout, kind.String(), s.Stats)
		if *out != "" {
			if err := save(kindPath(*out, kind, *all), s.Graph); err != nil {
				return err
			}
		}
		if *dotOut != "" {
			f, err := os.Create(kindPath(*dotOut, kind, *all))
			if err != nil {
				return err
			}
			if err := rdfsum.ExportDOT(f, s.Graph, kind.String()+" summary"); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
		}
	}
	return nil
}

// summarizeKinds builds the requested summaries: several kinds share one
// engine pass (class-set and adjacency state computed once); a single
// kind takes the leaner batch construction, which needs no engine state.
func summarizeKinds(g *rdfsum.Graph, kinds []rdfsum.Kind) (map[rdfsum.Kind]*rdfsum.Summary, error) {
	if len(kinds) == 1 {
		s, err := rdfsum.Summarize(g, kinds[0])
		if err != nil {
			return nil, err
		}
		return map[rdfsum.Kind]*rdfsum.Summary{kinds[0]: s}, nil
	}
	return rdfsum.SummarizeAll(g, kinds)
}

// kindPath inserts the kind before the path's extension when emitting
// several kinds at once (summary.nt -> summary.weak.nt), and returns the
// path unchanged for a single kind.
func kindPath(path string, kind rdfsum.Kind, all bool) string {
	if !all {
		return path
	}
	ext := filepath.Ext(path)
	return strings.TrimSuffix(path, ext) + "." + kind.String() + ext
}

func cmdSaturate(args []string) error {
	fs := flag.NewFlagSet("saturate", flag.ExitOnError)
	in := fs.String("in", "", "input graph")
	out := fs.String("out", "", "output file (default: stdout as N-Triples)")
	loadFlags(fs)
	fs.Parse(args) //nolint:errcheck
	g, err := load(*in)
	if err != nil {
		return err
	}
	inf := rdfsum.Saturate(g)
	fmt.Printf("saturation: %d -> %d triples\n", g.NumEdges(), inf.NumEdges())
	if *out == "" {
		return rdfsum.WriteNTriples(os.Stdout, inf.Decode())
	}
	return save(*out, inf)
}

func cmdStats(args []string) error {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	in := fs.String("in", "", "input graph")
	server := fs.String("server", "", "rdfsumd base URL; inspect a running server instead of -in")
	kindsFlag := fs.String("kinds", strings.ReplaceAll(kindList(), "|", ","), "summaries to measure")
	loadFlags(fs)
	fs.Parse(args) //nolint:errcheck
	if *server != "" {
		return remoteStats(*server, *kindsFlag)
	}
	g, err := load(*in)
	if err != nil {
		return err
	}
	fmt.Printf("graph: %d triples (%d data, %d type, %d schema)\n",
		g.NumEdges(), len(g.Data), len(g.Types), len(g.Schema))
	fmt.Printf("       %d data nodes, %d class nodes, %d distinct data properties\n",
		len(g.DataNodes()), len(g.ClassNodes()), len(g.DistinctDataProperties()))
	var kinds []rdfsum.Kind
	for _, name := range strings.Split(*kindsFlag, ",") {
		kind, err := rdfsum.ParseKind(strings.TrimSpace(name))
		if err != nil {
			return err
		}
		kinds = append(kinds, kind)
	}
	summaries, err := summarizeKinds(g, kinds)
	if err != nil {
		return err
	}
	for _, kind := range kinds {
		printStats(os.Stdout, kind.String(), summaries[kind].Stats)
	}
	return nil
}

func printStats(w *os.File, name string, st rdfsum.Stats) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "%s summary:\tdata nodes %d\tall nodes %d\tdata edges %d\tall edges %d\tcompression %.2e\n",
		name, st.DataNodes, st.AllNodes, st.DataEdges, st.AllEdges, st.CompressionRatio())
	tw.Flush() //nolint:errcheck
}

func cmdQuery(args []string) error {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	in := fs.String("in", "", "input graph")
	server := fs.String("server", "", "rdfsumd base URL; query a running server instead of -in")
	qtext := fs.String("q", "", "SPARQL BGP query text")
	qfile := fs.String("qfile", "", "file holding the query")
	saturateFirst := fs.Bool("saturate", false, "evaluate against G∞ (complete answers)")
	limit := fs.Int("limit", 0, "maximum rows (0 = all)")
	explain := fs.Bool("explain", false,
		"print the join order with estimated vs. actual cardinalities and per-pattern wall-clock time")
	// Off by default: a one-shot CLI invocation would pay a full
	// summarize+saturate before every query; the long-lived rdfsumd
	// amortizes that cost and defaults to weak instead.
	pruneKind := fs.String("prune", "off",
		"summary kind gating provably-empty queries and feeding planner stats (off = disable)")
	loadFlags(fs)
	fs.Parse(args) //nolint:errcheck
	if *qtext == "" && *qfile != "" {
		b, err := os.ReadFile(*qfile)
		if err != nil {
			return err
		}
		*qtext = string(b)
	}
	if *qtext == "" {
		return fmt.Errorf("missing -q query")
	}
	if *server != "" {
		return remoteQuery(*server, *qtext, *limit, *explain, *saturateFirst, *pruneKind)
	}
	g, err := load(*in)
	if err != nil {
		return err
	}
	q, err := rdfsum.ParseQuery(*qtext)
	if err != nil {
		return err
	}

	// Summarize *before* saturating: the pruning gate and the planner
	// statistics both come from a summary of the loaded graph.
	opts := &rdfsum.QueryOptions{Limit: *limit, Explain: *explain}
	if *pruneKind != "off" {
		kind, err := rdfsum.ParseKind(*pruneKind)
		if err != nil {
			return err
		}
		s, err := rdfsum.Summarize(g, kind)
		if err != nil {
			return err
		}
		opts.Pruner = rdfsum.NewQueryPruner(s)
		opts.Stats = s.ComputeWeights()
	}
	if *explain && opts.Stats == nil {
		// -explain without pruning: still build planner statistics so the
		// report carries real estimates, not "?".
		s, err := rdfsum.Summarize(g, rdfsum.Weak)
		if err != nil {
			return err
		}
		opts.Stats = s.ComputeWeights()
	}
	if *saturateFirst {
		g = rdfsum.Saturate(g)
	}
	res, err := rdfsum.EvalQueryWithOptions(g, rdfsum.NewIndex(g), q, opts)
	if err != nil {
		return err
	}
	if *explain && res.Explain != nil {
		fmt.Println("plan:")
		fmt.Print(res.Explain.String())
	}
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	for _, v := range res.Vars {
		fmt.Fprintf(tw, "?%s\t", v)
	}
	fmt.Fprintln(tw)
	for _, row := range res.Rows {
		for _, term := range row {
			fmt.Fprintf(tw, "%s\t", term)
		}
		fmt.Fprintln(tw)
	}
	tw.Flush() //nolint:errcheck
	if res.Truncated {
		fmt.Printf("%d row(s) (truncated at -limit %d)\n", len(res.Rows), *limit)
	} else {
		fmt.Printf("%d row(s)\n", len(res.Rows))
	}
	return nil
}

// cmdIngest streams an N-Triples file into a WAL-durable live store in
// batches (one WAL record + one fsync per batch — the group-commit
// unit); with -delete the file's triples are removed instead of added
// (every stored copy, journaled as opDelete records). The store is
// single-writer: if an rdfsumd -live is serving the same directory, the
// store's lock makes this command fail fast instead of corrupting the
// log — stop the server (or POST/DELETE /triples to it) instead.
func cmdIngest(args []string) error {
	fs := flag.NewFlagSet("ingest", flag.ExitOnError)
	walDir := fs.String("wal", "", "live store directory (created if absent)")
	server := fs.String("server", "", "rdfsumd base URL; ingest through a running server instead of -wal")
	in := fs.String("in", "", "triples file to append (or remove, with -delete): .nt or .ttl, optionally .gz/.zst")
	batch := fs.Int("batch", 8192, "triples per WAL record / fsync")
	del := fs.Bool("delete", false, "remove the file's triples instead of adding them")
	compact := fs.Bool("compact", false, "fold the WAL into a snapshot after ingest")
	nosync := fs.Bool("nosync", false, "skip per-batch fsync (faster, weaker durability)")
	fanout := fs.Int("index-fanout", 0, "tiered-index fold width (0 = default 8)")
	fs.Parse(args) //nolint:errcheck
	if *in == "" {
		return fmt.Errorf("missing -in file")
	}
	if *batch <= 0 {
		return fmt.Errorf("-batch must be positive")
	}
	if *server != "" {
		return remoteIngest(*server, *in, *batch, *del)
	}
	if *walDir == "" {
		return fmt.Errorf("missing -wal directory")
	}
	lv, err := rdfsum.OpenLive(*walDir, &rdfsum.LiveOptions{NoSync: *nosync, IndexFanout: *fanout})
	if err != nil {
		return err
	}
	defer lv.Close()
	before := lv.Stats()
	buf := make([]rdfsum.Triple, 0, *batch)
	flush := func() error {
		if len(buf) == 0 {
			return nil
		}
		var err error
		if *del {
			_, err = lv.DeleteBatch(buf)
		} else {
			err = lv.AddBatch(buf)
		}
		if err != nil {
			return err
		}
		buf = buf[:0]
		return nil
	}
	if err := rdfsum.StreamFile(*in, nil, func(t rdfsum.Triple) error {
		buf = append(buf, t)
		if len(buf) == *batch {
			return flush()
		}
		return nil
	}); err != nil {
		return describeStreamErr(*in, err)
	}
	if err := flush(); err != nil {
		return err
	}
	st := lv.Stats()
	if *del {
		fmt.Printf("deleted %d triples (%d -> %d), epoch %d, wal %d bytes\n",
			st.Deleted-before.Deleted, before.Triples, st.Triples, st.Epoch, st.WALBytes)
	} else {
		fmt.Printf("ingested %d triples (%d -> %d), epoch %d, wal %d bytes\n",
			st.Triples-before.Triples, before.Triples, st.Triples, st.Epoch, st.WALBytes)
	}
	if *compact {
		if err := lv.Compact(); err != nil {
			return err
		}
		st = lv.Stats()
		fmt.Printf("compacted to generation %d, wal %d bytes\n", st.Gen, st.WALBytes)
	}
	return nil
}

// describeStreamErr annotates a streaming-load failure with what the
// file name declared about its encoding, so a truncated dump fails as
// "reading dump.ttl.gz as gzip-compressed turtle: ..." instead of a
// bare parse position.
func describeStreamErr(path string, err error) error {
	format, codec := rdfsum.DetectFile(path)
	var as []string
	if codec != rdfsum.CompressionNone {
		as = append(as, codec.String()+"-compressed")
	}
	if format != rdfsum.FormatAuto {
		as = append(as, format.String())
	}
	if len(as) == 0 {
		return err
	}
	return fmt.Errorf("reading %s as %s: %w", path, strings.Join(as, " "), err)
}

// cmdInspect prints a snapshot file's physical layout: format version,
// header counts, and — for the v2 container — every section's offset,
// size and CRC, the dictionary stats and the on-disk compression ratio.
// v2 files are answered from the header and TOC alone (no triple decode).
func cmdInspect(args []string) error {
	fs := flag.NewFlagSet("inspect", flag.ExitOnError)
	fs.Parse(args) //nolint:errcheck // ExitOnError
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: rdfsum inspect <snapshot>")
	}
	path := fs.Arg(0)
	info, err := rdfsum.InspectSnapshot(path)
	if err != nil {
		return err
	}
	fmt.Printf("%s: %s format v%d, %d bytes\n", path, info.Kind, info.Version, info.FileSize)
	nTriples := info.NData + info.NTypes + info.NSchema
	fmt.Printf("  triples: %d (%d data, %d type, %d schema), dict terms: %d\n",
		nTriples, info.NData, info.NTypes, info.NSchema, info.NTerms)
	if info.Version < 2 {
		fmt.Println("  v1 stream format: single CRC over the whole file, no section table")
		return nil
	}
	serve := "eager read"
	if info.Mmap {
		serve = "mmap"
	}
	fmt.Printf("  page size: %d, serving mode in this build: %s\n", info.PageSize, serve)
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "  section\toffset\tbytes\tcrc32c\t\n")
	var payload uint64
	for _, s := range info.Sections {
		fmt.Fprintf(tw, "  %s\t%d\t%d\t%08x\t\n", s.Name, s.Off, s.Len, s.CRC)
		payload += s.Len
	}
	tw.Flush() //nolint:errcheck
	if nTriples > 0 {
		raw := nTriples * 3 * 8 // three u64 ids per triple, uncompressed baseline
		fmt.Printf("  payload: %d bytes (%.1f%% padding); columns+dict vs raw 24 B/triple: %.2fx\n",
			payload, 100*float64(uint64(info.FileSize)-min(payload, uint64(info.FileSize)))/float64(info.FileSize),
			float64(raw)/float64(payload))
	}
	return nil
}

func cmdConvert(args []string) error {
	fs := flag.NewFlagSet("convert", flag.ExitOnError)
	in := fs.String("in", "", "input graph")
	out := fs.String("out", "", "output file")
	loadFlags(fs)
	fs.Parse(args) //nolint:errcheck
	if *out == "" {
		return fmt.Errorf("missing -out file")
	}
	g, err := load(*in)
	if err != nil {
		return err
	}
	return save(*out, g)
}
