package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"text/tabwriter"

	"rdfsum/internal/cliques"
	"rdfsum/internal/dict"
	"rdfsum/internal/ntriples"
	"rdfsum/internal/rdf"
	"rdfsum/internal/store"
)

// cmdCliques prints the source and target property cliques of the data
// component (Definition 5), in the style of the paper's Table 1.
func cmdCliques(args []string) error {
	fs := flag.NewFlagSet("cliques", flag.ExitOnError)
	in := fs.String("in", "", "input graph (.nt or snapshot)")
	untypedOnly := fs.Bool("untyped", false, "restrict cliques to untyped-node adjacencies (the TS variant)")
	maxShown := fs.Int("max", 30, "maximum cliques to print per side")
	loadFlags(fs)
	fs.Parse(args) //nolint:errcheck

	g, err := load(*in)
	if err != nil {
		return err
	}
	var asg *cliques.Assignment
	if *untypedOnly {
		typed := g.TypedNodes()
		asg = cliques.ComputeRestricted(g.Data, func(n dict.ID) bool { return typed[n] })
	} else {
		asg = cliques.Compute(g.Data)
	}

	fmt.Printf("data properties: %d\n", len(asg.Props))
	printCliqueSide(g, "source cliques", asg.SrcMembers, *maxShown)
	printCliqueSide(g, "target cliques", asg.TgtMembers, *maxShown)
	return nil
}

func printCliqueSide(g *store.Graph, title string, members [][]dict.ID, maxShown int) {
	fmt.Printf("\n%s: %d\n", title, len(members))
	// Largest first: the interesting cliques are the big ones.
	order := make([]int, len(members))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return len(members[order[a]]) > len(members[order[b]]) })
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	for rank, idx := range order {
		if rank >= maxShown {
			fmt.Fprintf(tw, "  ... %d more\n", len(members)-maxShown)
			break
		}
		var names []string
		for _, p := range members[idx] {
			names = append(names, shortName(g.Dict().Term(p).Value))
		}
		sort.Strings(names)
		fmt.Fprintf(tw, "  C%d\t(%d)\t{%s}\n", rank+1, len(members[idx]), strings.Join(names, ", "))
	}
	tw.Flush() //nolint:errcheck
}

func shortName(iri string) string {
	for i := len(iri) - 1; i >= 0; i-- {
		if iri[i] == '/' || iri[i] == '#' || iri[i] == ':' {
			if i+1 < len(iri) {
				return iri[i+1:]
			}
			break
		}
	}
	return iri
}

// cmdCheck verifies the well-behavedness assumptions of §2.1.
func cmdCheck(args []string) error {
	fs := flag.NewFlagSet("check", flag.ExitOnError)
	in := fs.String("in", "", "input N-Triples file")
	maxShown := fs.Int("max", 20, "maximum violations to print")
	fs.Parse(args) //nolint:errcheck
	if *in == "" {
		return fmt.Errorf("missing -in file")
	}
	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	defer f.Close()
	triples, err := ntriples.Parse(f)
	if err != nil {
		return err
	}
	violations := rdf.CheckWellBehaved(triples)
	if len(violations) == 0 {
		fmt.Printf("%s: %d triples, well-behaved\n", *in, len(triples))
		return nil
	}
	for i, v := range violations {
		if i >= *maxShown {
			fmt.Printf("... %d more violations\n", len(violations)-*maxShown)
			break
		}
		fmt.Println(v.Error())
	}
	return fmt.Errorf("%d well-behavedness violations", len(violations))
}
