package main

import (
	"flag"
	"os"

	"rdfsum"
	"rdfsum/internal/core"
	"rdfsum/internal/profile"
)

// cmdProfile prints the dataset's entity kinds — classes, attributes,
// relationships and instance counts — reconstructed from a summary: the
// paper's "get acquainted with a new dataset" use case as a CLI.
func cmdProfile(args []string) error {
	fs := flag.NewFlagSet("profile", flag.ExitOnError)
	in := fs.String("in", "", "input graph (.nt or snapshot)")
	kindName := fs.String("kind", "typed-weak", "summary kind to profile through")
	maxKinds := fs.Int("max", 40, "maximum entity kinds to print (0 = all)")
	loadFlags(fs)
	fs.Parse(args) //nolint:errcheck

	kind, err := rdfsum.ParseKind(*kindName)
	if err != nil {
		return err
	}
	g, err := load(*in)
	if err != nil {
		return err
	}
	s, err := core.Summarize(g, kind, nil)
	if err != nil {
		return err
	}
	return profile.Build(s).Write(os.Stdout, *maxKinds)
}
