package main

import (
	"context"
	"errors"
	"fmt"
	"os"
	"strings"
	"text/tabwriter"
	"time"

	"rdfsum"
	"rdfsum/client"
)

// Remote mode: with -server URL the query, stats and ingest subcommands
// run against a live rdfsumd over its /v1 API (through the typed client
// package) instead of loading a graph locally — the store stays owned by
// the daemon, and the CLI becomes a thin curl replacement with the same
// output shapes as local mode.

// remoteQuery evaluates the query on the server and renders the rows in
// the local-mode table format.
func remoteQuery(server, qtext string, limit int, explain, saturate bool, prune string) error {
	cl, err := client.New(server)
	if err != nil {
		return err
	}
	res, err := cl.Query(context.Background(), qtext, &client.QueryOptions{
		Limit:    limit,
		Explain:  explain,
		Saturate: saturate,
		Prune:    prune,
	})
	if err != nil {
		return err
	}
	if explain && len(res.Explain) > 0 {
		fmt.Println("plan:")
		fmt.Println(string(res.Explain))
	}
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	for _, v := range res.Vars {
		fmt.Fprintf(tw, "?%s\t", v)
	}
	fmt.Fprintln(tw)
	for _, row := range res.Rows {
		for _, cell := range row {
			fmt.Fprintf(tw, "%s\t", cell)
		}
		fmt.Fprintln(tw)
	}
	tw.Flush() //nolint:errcheck
	if res.Truncated {
		fmt.Printf("%d row(s) (truncated by the server), epoch %d\n", res.Count, res.Epoch)
	} else {
		fmt.Printf("%d row(s), epoch %d\n", res.Count, res.Epoch)
	}
	return nil
}

// remoteStats prints the server's graph statistics and the summary sizes
// of the requested kinds, mirroring local-mode output plus the serving
// counters a daemon adds (epoch, WAL, replication role).
func remoteStats(server, kindsFlag string) error {
	cl, err := client.New(server)
	if err != nil {
		return err
	}
	ctx := context.Background()
	st, err := cl.Stats(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("graph: %d triples (%d data, %d type, %d schema)\n",
		st.Triples, st.DataTriples, st.TypeTriples, st.SchemaTriples)
	fmt.Printf("       %d data nodes, %d class nodes, %d distinct data properties\n",
		st.DataNodes, st.ClassNodes, st.Properties)
	role := "standalone"
	if rs, err := cl.ReplicationStatus(ctx); err == nil {
		role = rs.Role
	}
	fmt.Printf("       epoch %d, durable %v, read-only %v, role %s\n",
		st.Epoch, st.Durable, st.ReadOnly, role)
	for _, name := range strings.Split(kindsFlag, ",") {
		name = strings.TrimSpace(name)
		info, err := cl.Summary(ctx, name)
		if err != nil {
			return err
		}
		printStats(os.Stdout, info.Kind, rdfsum.Stats{
			DataNodes: info.DataNodes,
			AllNodes:  info.AllNodes,
			DataEdges: info.DataEdges,
			AllEdges:  info.AllEdges,
		})
	}
	return nil
}

// remoteIngest streams a triples file (N-Triples or Turtle, optionally
// gzip/zstd-compressed — detected from the name) to the server in
// acknowledged batches (one /v1/triples request per batch); with del the
// triples are removed instead. A server shedding load (429
// "ingest_overloaded") is retried after its Retry-After hint — the
// client-side half of the bounded-queue backpressure contract.
func remoteIngest(server, in string, batch int, del bool) error {
	cl, err := client.New(server)
	if err != nil {
		return err
	}
	ctx := context.Background()
	var (
		buf     = make([]rdfsum.Triple, 0, batch)
		applied int
		epoch   uint64
		durable bool
	)
	flush := func() error {
		if len(buf) == 0 {
			return nil
		}
		for {
			if del {
				res, err := cl.Delete(ctx, buf)
				if err == nil {
					applied += res.Removed
					epoch, durable = res.Epoch, res.Durable
					break
				}
				if wait, ok := retryDelay(err); ok {
					time.Sleep(wait)
					continue
				}
				return err
			}
			res, err := cl.Ingest(ctx, buf)
			if err == nil {
				applied += res.Added
				epoch, durable = res.Epoch, res.Durable
				break
			}
			if wait, ok := retryDelay(err); ok {
				time.Sleep(wait)
				continue
			}
			return err
		}
		buf = buf[:0]
		return nil
	}
	if err := rdfsum.StreamFile(in, nil, func(t rdfsum.Triple) error {
		buf = append(buf, t)
		if len(buf) == batch {
			return flush()
		}
		return nil
	}); err != nil {
		return describeStreamErr(in, err)
	}
	if err := flush(); err != nil {
		return err
	}
	verb := "ingested"
	if del {
		verb = "deleted"
	}
	fmt.Printf("%s %d triples via %s, epoch %d, durable %v\n", verb, applied, server, epoch, durable)
	return nil
}

// retryDelay reports whether err is worth retrying and after how long,
// honoring the server's Retry-After hint with a 1s fallback.
func retryDelay(err error) (time.Duration, bool) {
	if !client.IsRetryable(err) {
		return 0, false
	}
	var ae *client.Error
	if errors.As(err, &ae) && ae.RetryAfter > 0 {
		return ae.RetryAfter, true
	}
	return time.Second, true
}
