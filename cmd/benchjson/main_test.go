package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: rdfsum
cpu: Intel(R) Xeon(R) Processor @ 2.70GHz
BenchmarkQueryEngineBSBM/planned-8         	     100	   8232818 ns/op	    2048 B/op	      12 allocs/op	      8577 rows
BenchmarkQueryPruningBSBM/pruned-8         	   30000	     39025 ns/op
PASS
ok  	rdfsum	0.282s
pkg: rdfsum/internal/query
BenchmarkOther-8	       5	    100 ns/op
`

func TestParse(t *testing.T) {
	rep, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Env["goos"] != "linux" || rep.Env["goarch"] != "amd64" || !strings.Contains(rep.Env["cpu"], "Xeon") {
		t.Errorf("env = %v", rep.Env)
	}
	if len(rep.Benchmarks) != 3 {
		t.Fatalf("benchmarks = %d, want 3", len(rep.Benchmarks))
	}
	// Sorted by (pkg, name): the two rdfsum entries first.
	b := rep.Benchmarks[0]
	if b.Name != "BenchmarkQueryEngineBSBM/planned-8" || b.Pkg != "rdfsum" || b.Runs != 100 {
		t.Errorf("first = %+v", b)
	}
	if b.Metrics["ns/op"] != 8232818 || b.Metrics["allocs/op"] != 12 || b.Metrics["rows"] != 8577 {
		t.Errorf("metrics = %v", b.Metrics)
	}
	if last := rep.Benchmarks[2]; last.Pkg != "rdfsum/internal/query" || last.Name != "BenchmarkOther-8" {
		t.Errorf("last = %+v", last)
	}
}

func TestParseMalformed(t *testing.T) {
	if _, err := parse(strings.NewReader("BenchmarkBad-8  notanumber  1 ns/op\n")); err == nil {
		t.Error("want error on malformed iteration count")
	}
	if _, err := parse(strings.NewReader("BenchmarkBad-8  3  1 ns/op trailing\n")); err == nil {
		t.Error("want error on odd metric fields")
	}
}
