// Command benchjson converts `go test -bench` text output into a stable
// JSON document, so CI can archive the perf trajectory per commit
// (BENCH_ci.json) and diffs stay machine-readable.
//
//	go test -run XXX-none -bench . -benchmem ./... | benchjson -out BENCH_ci.json
//
// Every benchmark line becomes one record with its iteration count and a
// metric map (ns/op, B/op, allocs/op, MB/s and any b.ReportMetric units).
// Header lines (goos/goarch/cpu/pkg) are folded into the environment
// block; pkg is tracked per benchmark.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Benchmark is one `Benchmark...` result line.
type Benchmark struct {
	Name    string             `json:"name"`
	Pkg     string             `json:"pkg,omitempty"`
	Runs    int64              `json:"runs"`
	Metrics map[string]float64 `json:"metrics"`
}

// Report is the document benchjson emits.
type Report struct {
	Env        map[string]string `json:"env"`
	Benchmarks []Benchmark       `json:"benchmarks"`
}

func main() {
	in := flag.String("in", "", "benchmark text (default: stdin)")
	out := flag.String("out", "", "output file (default: stdout)")
	merge := flag.String("merge", "", "existing report to merge into: its benchmarks are kept unless re-measured here")
	flag.Parse()

	var r io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}
	report, err := parse(r)
	if err != nil {
		fatal(err)
	}
	if *merge != "" {
		if err := mergeReport(report, *merge); err != nil {
			fatal(err)
		}
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if *out == "" {
		if _, err := os.Stdout.Write(data); err != nil {
			fatal(err)
		}
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatal(err)
	}
}

// mergeReport folds an existing report into the freshly parsed one:
// benchmarks re-measured in this run replace their old records, everything
// else is carried over, and the combined set is re-sorted. A missing merge
// file is not an error — first runs start from nothing.
func mergeReport(report *Report, path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	var old Report
	if err := json.Unmarshal(data, &old); err != nil {
		return fmt.Errorf("merge %s: %w", path, err)
	}
	fresh := map[string]bool{}
	for _, b := range report.Benchmarks {
		fresh[b.Pkg+"\x00"+b.Name] = true
	}
	for _, b := range old.Benchmarks {
		if !fresh[b.Pkg+"\x00"+b.Name] {
			report.Benchmarks = append(report.Benchmarks, b)
		}
	}
	for k, v := range old.Env {
		if _, ok := report.Env[k]; !ok {
			report.Env[k] = v
		}
	}
	sort.SliceStable(report.Benchmarks, func(i, j int) bool {
		a, b := report.Benchmarks[i], report.Benchmarks[j]
		if a.Pkg != b.Pkg {
			return a.Pkg < b.Pkg
		}
		return a.Name < b.Name
	})
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}

// parse reads go-test benchmark output. Unrecognized lines (test chatter,
// PASS/ok trailers) are skipped; malformed Benchmark lines are an error.
func parse(r io.Reader) (*Report, error) {
	report := &Report{Env: map[string]string{}}
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"),
			strings.HasPrefix(line, "goarch:"),
			strings.HasPrefix(line, "cpu:"):
			key, val, _ := strings.Cut(line, ":")
			report.Env[key] = strings.TrimSpace(val)
		case strings.HasPrefix(line, "pkg:"):
			_, val, _ := strings.Cut(line, ":")
			pkg = strings.TrimSpace(val)
		case strings.HasPrefix(line, "Benchmark"):
			b, err := parseBench(line)
			if err != nil {
				return nil, fmt.Errorf("%q: %w", line, err)
			}
			b.Pkg = pkg
			report.Benchmarks = append(report.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	sort.SliceStable(report.Benchmarks, func(i, j int) bool {
		a, b := report.Benchmarks[i], report.Benchmarks[j]
		if a.Pkg != b.Pkg {
			return a.Pkg < b.Pkg
		}
		return a.Name < b.Name
	})
	return report, nil
}

// parseBench splits "BenchmarkX-8  100  123 ns/op  4 B/op ..." into name,
// run count, and (value, unit) metric pairs.
func parseBench(line string) (Benchmark, error) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return Benchmark{}, fmt.Errorf("too few fields")
	}
	runs, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, fmt.Errorf("iteration count: %w", err)
	}
	b := Benchmark{Name: fields[0], Runs: runs, Metrics: map[string]float64{}}
	rest := fields[2:]
	if len(rest)%2 != 0 {
		return Benchmark{}, fmt.Errorf("odd metric fields: %v", rest)
	}
	for i := 0; i < len(rest); i += 2 {
		v, err := strconv.ParseFloat(rest[i], 64)
		if err != nil {
			return Benchmark{}, fmt.Errorf("metric value %q: %w", rest[i], err)
		}
		b.Metrics[rest[i+1]] = v
	}
	return b, nil
}
