# The targets here are exactly what CI runs (.github/workflows/ci.yml),
# so a green `make check` locally means a green build.

GO ?= go

# Fuzz smoke duration per target (CI uses the default; raise locally for
# real fuzzing sessions: make fuzz FUZZTIME=10m).
FUZZTIME ?= 30s

# Coverage-gated packages and the minimum total coverage each must hold.
COVER_PKGS = ./internal/store ./internal/live ./internal/core
COVER_MIN  = 70

.PHONY: all build test race vet lint fmt fmt-check obs-check est-check bench bench-smoke bench-json snapshot-bench test-nommap stress fuzz cover cover-check check clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# What the CI lint job runs: vet always, staticcheck when installed
# (`go install honnef.co/go/tools/cmd/staticcheck@latest`).
lint: vet
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

fmt:
	gofmt -w .

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# Observability gate (mirrored as a CI step): the exposition-format
# linter over a live /metrics scrape, the legacy series-name contract,
# per-route latency histograms, and the request-ID round trip.
obs-check:
	$(GO) test -count=1 \
		-run 'TestMetricsExposition|TestLegacyMetricSeries|TestEveryV1Route|TestServerRequestID|TestLint|TestExpositionFormat|TestMiddleware' \
		./internal/obs/ ./cmd/rdfsumd/

# Cardinality-estimation gate (mirrored as a CI step): the planner
# non-regression proof on the committed BSBM/LUBM mixes, the median
# q-error threshold over the mixes and the golden corpora, and the
# single-pattern exactness property — fails when estimation accuracy or
# the chosen join orders regress.
est-check:
	$(GO) test -count=1 \
		-run 'TestPlannerOrderNonRegression|TestEstimationAccuracyMixes|TestEstimatorQErrorGolden|TestEstimatorExactSinglePattern' \
		./internal/query/

# Full benchmark sweep (the 1M-triple load benchmark takes a while).
bench:
	$(GO) test -run 'XXX-none' -bench . ./...

# One iteration of every benchmark, skipping the slow sweeps — the CI
# smoke check that perf code at least runs.
bench-smoke:
	$(GO) test -run 'XXX-none' -bench . -benchtime 1x -short ./...

# The CI bench job: smoke numbers with allocations, archived as JSON.
# Redirect-then-cat (not a tee pipe) so a benchmark failure fails the
# target instead of being masked by the pipe's exit status.
bench-json:
	@$(GO) test -run 'XXX-none' -bench . -benchtime 1x -benchmem -short ./... > bench.txt || (cat bench.txt; rm -f bench.txt; exit 1)
	@cat bench.txt
	$(GO) run ./cmd/benchjson -in bench.txt -out BENCH_ci.json
	@rm -f bench.txt

# Snapshot-format benchmarks at full scale (100k/1M/10M cold opens for
# both formats plus the zero-copy mapped scan): the acceptance evidence
# that v2 open cost stays flat while v1 grows with the snapshot. Merged
# into BENCH_ci.json on top of whatever bench-json last archived.
# Seeding the 10M-triple store dominates the runtime (several minutes);
# SNAPBENCH_SHORT=1 keeps only the 100k size.
snapshot-bench:
	@$(GO) test -run 'XXX-none' -bench 'BenchmarkOpenLiveCold|BenchmarkSnapshotScanMmap|BenchmarkSnapshotPointLookupMmap' \
		-benchtime 1x -benchmem -timeout 60m $(if $(SNAPBENCH_SHORT),-short) \
		./internal/live/ ./internal/store/ > snapbench.txt || (cat snapbench.txt; rm -f snapbench.txt; exit 1)
	@cat snapbench.txt
	$(GO) run ./cmd/benchjson -in snapbench.txt -merge BENCH_ci.json -out BENCH_ci.json
	@rm -f snapbench.txt

# The mmap-free portability build: every mapped path falls back to eager
# reads (mirrored as a CI job).
test-nommap:
	$(GO) build -tags nommap ./...
	$(GO) test -tags nommap ./...

# Live-subsystem stress under the race detector (mirrored as a CI step):
# readers query epoch snapshots while a writer ingests batches and
# compacts; readers materialize every maintained summary kind during
# ingest; snapshot iterators are held across concurrent Compact calls
# while deletes land (tiered-index generation swaps); plus the WAL
# crash-recovery property test and the replication suite (bootstrap,
# tail, re-bootstrap across compaction). -count=2 reruns with fresh
# schedules. replication-smoke then boots a real leader + follower pair
# as separate processes and asserts catch-up, identical /v1/query
# results and post-delete convergence.
stress: replication-smoke
	$(GO) test -race -count=2 \
		-run 'TestLiveStress|TestLiveMaintainedStress|TestLiveIngestDuringConcurrentQueries|TestLiveCrashRecoveryPrefix|TestLiveSnapshotAcrossCompactStress|TestLiveIngestQueueBackpressureStress|TestFollower' \
		./internal/live ./cmd/rdfsumd ./internal/repl

# Two-process replication smoke (mirrored as a CI step): leader ingests,
# follower bootstraps + tails to lag 0, query results match on both
# sides, deletes and a compaction converge.
replication-smoke:
	$(GO) test -race -count=1 -run 'TestE2EReplication' ./cmd/rdfsumd

# Streaming-ingest smoke (mirrored as a CI step): a real rdfsumd boots
# from a cold gzipped Turtle dump straight into serving summaries and
# queries, then a zstd-compressed streaming upload lands through the
# typed client.
ingest-smoke:
	$(GO) test -race -count=1 -run 'TestE2EStreamingIngest' ./cmd/rdfsumd

.PHONY: replication-smoke ingest-smoke

# Fuzz smoke (mirrored as a CI job): the N-Triples parser, the Turtle
# statement splitter's bit-identity property (split+parallel parse ==
# sequential parse, byte for byte), and the WAL record decoder/replayer,
# each seeded from the committed corpus under the package's testdata/fuzz/
# directory.
fuzz:
	$(GO) test -fuzz=FuzzParse -fuzztime=$(FUZZTIME) -run='^$$' ./internal/ntriples
	$(GO) test -fuzz=FuzzTurtleSplit -fuzztime=$(FUZZTIME) -run='^$$' ./internal/turtle
	$(GO) test -fuzz=FuzzWALReplay -fuzztime=$(FUZZTIME) -run='^$$' ./internal/live
	$(GO) test -fuzz=FuzzWALRecordDecode -fuzztime=$(FUZZTIME) -run='^$$' ./internal/live

# Per-package coverage table for the storage/live/engine core.
cover:
	@for p in $(COVER_PKGS); do \
		$(GO) test -count=1 -coverprofile=.cover.tmp $$p > /dev/null || exit 1; \
		pct=$$($(GO) tool cover -func=.cover.tmp | awk '/^total:/ {gsub(/%/,"",$$3); print $$3}'); \
		printf "%-24s %6s%%\n" $$p $$pct; \
	done; rm -f .cover.tmp

# The CI coverage gate: fail when any gated package drops below
# $(COVER_MIN)% total statement coverage.
cover-check:
	@fail=0; for p in $(COVER_PKGS); do \
		$(GO) test -count=1 -coverprofile=.cover.tmp $$p > /dev/null || exit 1; \
		pct=$$($(GO) tool cover -func=.cover.tmp | awk '/^total:/ {gsub(/%/,"",$$3); print $$3}'); \
		printf "%-24s %6s%%" $$p $$pct; \
		if awk -v p=$$pct -v min=$(COVER_MIN) 'BEGIN{exit !(p+0 < min)}'; then \
			printf "  FAIL (< $(COVER_MIN)%%)\n"; fail=1; \
		else \
			printf "  ok\n"; \
		fi; \
	done; rm -f .cover.tmp; exit $$fail

check: build vet fmt-check race obs-check est-check bench-smoke cover-check

clean:
	$(GO) clean ./...
