# The targets here are exactly what CI runs (.github/workflows/ci.yml),
# so a green `make check` locally means a green build.

GO ?= go

.PHONY: all build test race vet fmt fmt-check bench bench-smoke check clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -w .

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# Full benchmark sweep (the 1M-triple load benchmark takes a while).
bench:
	$(GO) test -run 'XXX-none' -bench . ./...

# One iteration of every benchmark, skipping the slow sweeps — the CI
# smoke check that perf code at least runs.
bench-smoke:
	$(GO) test -run 'XXX-none' -bench . -benchtime 1x -short ./...

check: build vet fmt-check race bench-smoke

clean:
	$(GO) clean ./...
