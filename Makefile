# The targets here are exactly what CI runs (.github/workflows/ci.yml),
# so a green `make check` locally means a green build.

GO ?= go

.PHONY: all build test race vet lint fmt fmt-check bench bench-smoke bench-json stress check clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# What the CI lint job runs: vet always, staticcheck when installed
# (`go install honnef.co/go/tools/cmd/staticcheck@latest`).
lint: vet
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

fmt:
	gofmt -w .

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# Full benchmark sweep (the 1M-triple load benchmark takes a while).
bench:
	$(GO) test -run 'XXX-none' -bench . ./...

# One iteration of every benchmark, skipping the slow sweeps — the CI
# smoke check that perf code at least runs.
bench-smoke:
	$(GO) test -run 'XXX-none' -bench . -benchtime 1x -short ./...

# The CI bench job: smoke numbers with allocations, archived as JSON.
# Redirect-then-cat (not a tee pipe) so a benchmark failure fails the
# target instead of being masked by the pipe's exit status.
bench-json:
	@$(GO) test -run 'XXX-none' -bench . -benchtime 1x -benchmem -short ./... > bench.txt || (cat bench.txt; rm -f bench.txt; exit 1)
	@cat bench.txt
	$(GO) run ./cmd/benchjson -in bench.txt -out BENCH_ci.json
	@rm -f bench.txt

# Live-subsystem stress under the race detector (mirrored as a CI step):
# readers query epoch snapshots while a writer ingests batches and
# compacts; readers materialize every maintained summary kind during
# ingest; plus the WAL crash-recovery property test. -count=2 reruns
# with fresh schedules.
stress:
	$(GO) test -race -count=2 \
		-run 'TestLiveStress|TestLiveMaintainedStress|TestLiveIngestDuringConcurrentQueries|TestLiveCrashRecoveryPrefix' \
		./internal/live ./cmd/rdfsumd

check: build vet fmt-check race bench-smoke

clean:
	$(GO) clean ./...
