package rdfsum_test

import (
	"fmt"
	"log"

	"rdfsum"
)

const exampleDoc = `
<http://ex.org/r1> <http://ex.org/author> <http://ex.org/a1> .
<http://ex.org/r1> <http://ex.org/title> "Foundations" .
<http://ex.org/r2> <http://ex.org/author> <http://ex.org/a1> .
<http://ex.org/r2> <http://ex.org/title> "Principles" .
<http://ex.org/r1> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://ex.org/Book> .
`

func ExampleSummarize() {
	triples, err := rdfsum.ParseString(exampleDoc)
	if err != nil {
		log.Fatal(err)
	}
	g := rdfsum.NewGraph(triples)
	s, err := rdfsum.Summarize(g, rdfsum.Weak)
	if err != nil {
		log.Fatal(err)
	}
	// Both books share every clique, so one summary node represents them;
	// each property labels exactly one edge (Property 4).
	fmt.Println("data nodes:", s.Stats.DataNodes)
	fmt.Println("data edges:", s.Stats.DataEdges)
	// Output:
	// data nodes: 3
	// data edges: 2
}

func ExampleSaturate() {
	doc := exampleDoc + `
<http://ex.org/Book> <http://www.w3.org/2000/01/rdf-schema#subClassOf> <http://ex.org/Publication> .
`
	triples, err := rdfsum.ParseString(doc)
	if err != nil {
		log.Fatal(err)
	}
	g := rdfsum.NewGraph(triples)
	inf := rdfsum.Saturate(g)
	fmt.Println("implicit triples:", inf.NumEdges()-g.NumEdges())
	// Output:
	// implicit triples: 1
}

func ExampleEvalQuery() {
	triples, err := rdfsum.ParseString(exampleDoc)
	if err != nil {
		log.Fatal(err)
	}
	g := rdfsum.NewGraph(triples)
	q, err := rdfsum.ParseQuery(`
		PREFIX ex: <http://ex.org/>
		SELECT ?t WHERE { ?x a ex:Book . ?x ex:title ?t }`)
	if err != nil {
		log.Fatal(err)
	}
	res, err := rdfsum.EvalQuery(g, q)
	if err != nil {
		log.Fatal(err)
	}
	for _, row := range res.Rows {
		fmt.Println(row[0])
	}
	// Output:
	// "Foundations"
}

func ExampleNewWeakBuilder() {
	triples, err := rdfsum.ParseString(exampleDoc)
	if err != nil {
		log.Fatal(err)
	}
	b := rdfsum.NewWeakBuilder()
	for _, t := range triples {
		b.Add(t)
	}
	s := b.Summary() // snapshot; the builder keeps accepting triples
	fmt.Println("classes:", b.Classes())
	fmt.Println("edges:", s.Stats.DataEdges)
	// Output:
	// classes: 3
	// edges: 2
}
