module rdfsum

go 1.24
