// Package rdfsum implements query-oriented summarization of RDF graphs,
// after "Query-Oriented Summarization of RDF Graphs" (Čebirić, Goasdoué,
// Manolescu).
//
// Given an RDF graph G, the library builds an RDF graph H_G that
// summarizes G — typically orders of magnitude smaller — as the quotient
// of G under a node-equivalence relation. Four summary kinds are provided:
//
//   - Weak: nodes sharing source/target property cliques, transitively.
//     The most compact; one data edge per distinct property.
//   - Strong: nodes with identical (source clique, target clique) pairs.
//   - TypedWeak / TypedStrong: rdf:type takes precedence — typed nodes
//     group by their exact class set, untyped ones summarize weakly /
//     strongly.
//
// Summaries are RBGP-representative (a relational BGP query with answers
// on G∞ has answers on H_G∞), accurate, and idempotent (the summary of a
// summary is itself). Weak and strong summaries additionally support a
// saturation shortcut: the summary of the saturated graph equals the
// summary of the saturated summary, so reasoning can run on the small
// graph.
//
// Quickstart:
//
//	g, err := rdfsum.LoadNTriplesFile("data.nt")
//	s, err := rdfsum.Summarize(g, rdfsum.Weak)
//	fmt.Println(s.Stats.DataNodes, s.Stats.CompressionRatio())
//	rdfsum.ExportDOT(os.Stdout, s.Graph, "weak summary")
package rdfsum

import (
	"io"
	"os"

	"rdfsum/internal/bsbm"
	"rdfsum/internal/compress"
	"rdfsum/internal/core"
	"rdfsum/internal/dot"
	"rdfsum/internal/live"
	"rdfsum/internal/load"
	"rdfsum/internal/lubm"
	"rdfsum/internal/ntriples"
	"rdfsum/internal/query"
	"rdfsum/internal/rdf"
	"rdfsum/internal/saturate"
	"rdfsum/internal/store"
	"rdfsum/internal/turtle"
)

// Model types, re-exported from the implementation packages. The aliases
// carry their full method sets.
type (
	// Term is an RDF term: IRI, blank node, or literal.
	Term = rdf.Term
	// Triple is a string-level RDF triple.
	Triple = rdf.Triple
	// Graph is a dictionary-encoded RDF graph, partitioned into data,
	// type and schema components.
	Graph = store.Graph
	// Index provides triple-pattern access paths over a Graph.
	Index = store.Index
	// Summary is the result of summarizing a Graph.
	Summary = core.Summary
	// Stats carries the size measures of a summary and its input.
	Stats = core.Stats
	// Kind selects a summary construction.
	Kind = core.Kind
	// Options tunes summarization.
	Options = core.Options
	// Query is a SPARQL basic-graph-pattern query.
	Query = query.Query
	// QueryResult is the answer table of a SELECT evaluation.
	QueryResult = query.Result
	// QueryPlan is a query compiled against one graph: an integer-slot
	// program with a weight-chosen static join order, reusable across
	// evaluations and safe for concurrent use.
	QueryPlan = query.Plan
	// QueryExplain reports the chosen join order with the whole-query
	// cardinality estimate and estimated vs. actual per-pattern
	// cardinalities.
	QueryExplain = query.Explain
	// QueryPruner gates evaluation behind a saturated summary used as an
	// emptiness oracle (Prop. 1).
	QueryPruner = query.Pruner
	// PlanStats feeds summary statistics to the query planner: a
	// summary's *Weights (see (*Summary).ComputeWeights), whose per-edge
	// multiplicities let the planner estimate whole conjunctive queries
	// against the summary graph and order joins by estimated joined
	// cardinality.
	PlanStats = query.PlanStats
	// Builder maintains one summary kind incrementally under triple
	// insertions (the unified quotient engine; see NewBuilder).
	Builder = core.Builder
	// BuilderSet maintains several summary kinds over one shared graph
	// with one pass per inserted triple.
	BuilderSet = core.BuilderSet
	// WeakBuilder maintains a weak summary incrementally under triple
	// insertions (streaming construction; the weak kind of the engine).
	WeakBuilder = core.WeakBuilder
	// Weights are the cardinality statistics of a summary's quotient map,
	// for query-optimizer use.
	Weights = core.Weights
)

// Summary kinds.
const (
	Weak        = core.Weak
	Strong      = core.Strong
	TypeBased   = core.TypeBased
	TypedWeak   = core.TypedWeak
	TypedStrong = core.TypedStrong
)

// NumKinds is the number of summary kinds; Kind values are dense in
// [0, NumKinds).
const NumKinds = core.NumKinds

// Kinds lists all summary kinds in presentation order. Tools enumerate
// it instead of hand-rolling kind lists.
var Kinds = core.Kinds

// PaperKinds lists the kinds the paper's evaluation reports (§7): every
// kind except the helper TypeBased.
var PaperKinds = core.PaperKinds

// Weak-summary construction algorithms (Options.WeakAlgorithm).
const (
	// Incremental is the paper's one-pass merge algorithm (default).
	Incremental = core.Incremental
	// Global materializes the property cliques first; an oracle/ablation.
	Global = core.Global
)

// Term constructors.
var (
	NewIRI          = rdf.NewIRI
	NewBlank        = rdf.NewBlank
	NewLiteral      = rdf.NewLiteral
	NewLangLiteral  = rdf.NewLangLiteral
	NewTypedLiteral = rdf.NewTypedLiteral
	NewTriple       = rdf.NewTriple
)

// ParseKind resolves a summary kind name ("weak", "strong", "typed-weak",
// "typed-strong", "type-based", or their abbreviations).
func ParseKind(name string) (Kind, error) { return core.ParseKind(name) }

// Parse reads an N-Triples document.
func Parse(r io.Reader) ([]Triple, error) { return ntriples.Parse(r) }

// ParseString reads an N-Triples document from a string.
func ParseString(s string) ([]Triple, error) { return ntriples.ParseString(s) }

// ParseStream streams triples from an N-Triples document to fn without
// materializing them.
func ParseStream(r io.Reader, fn func(Triple) error) error {
	return ntriples.ParseFunc(r, fn)
}

// WriteNTriples serializes triples in N-Triples format.
func WriteNTriples(w io.Writer, triples []Triple) error { return ntriples.Write(w, triples) }

// NewGraph builds an encoded graph from triples.
func NewGraph(triples []Triple) *Graph { return store.FromTriples(triples) }

// EmptyGraph returns an empty graph with a fresh dictionary; add triples
// with (*Graph).Add.
func EmptyGraph() *Graph { return store.NewGraph() }

// Format identifies the RDF serialization of an input; FormatAuto
// detects it from the file extension or the leading bytes (a document
// opening with a directive is Turtle; pass FormatTurtle explicitly for
// directive-free Turtle).
type Format = load.Format

// Input formats accepted by Load and LoadFile.
const (
	FormatAuto     = load.FormatAuto
	FormatNTriples = load.FormatNTriples
	FormatTurtle   = load.FormatTurtle
)

// Compression identifies a stream compression scheme; CompressionAuto
// sniffs the magic bytes (and LoadFile additionally honors .gz/.zst
// extensions).
type Compression = compress.Codec

// Stream compressions accepted by Load and LoadFile. Zstd is a built-in
// Raw/RLE-block (store-mode) subset of RFC 8878 — entropy-coded frames
// are rejected with ErrUnsupportedStream.
const (
	CompressionAuto = compress.Auto
	CompressionNone = compress.None
	CompressionGzip = compress.Gzip
	CompressionZstd = compress.Zstd
)

// Sentinel errors classifying compressed-input failures; match with
// errors.Is. A load that fails with any of these has published nothing.
var (
	// ErrTruncatedStream: the compressed input ended mid-frame.
	ErrTruncatedStream = compress.ErrTruncated
	// ErrCorruptStream: framing or checksum damage in the compressed input.
	ErrCorruptStream = compress.ErrCorrupt
	// ErrUnsupportedStream: a valid stream using a compression feature
	// outside the built-in subset (e.g. entropy-coded zstd blocks).
	ErrUnsupportedStream = compress.ErrUnsupported
)

// LoadOptions tunes the loading pipeline.
type LoadOptions struct {
	// Workers is the number of parse workers; 0 uses all CPUs
	// (GOMAXPROCS) and 1 selects the sequential path.
	Workers int
	// SlabBytes is the chunk granularity of the parallel reader;
	// 0 uses the 1 MiB default.
	SlabBytes int
	// Format is the input's RDF serialization (default: detect).
	Format Format
	// Compression is the input's stream compression (default: detect).
	Compression Compression
}

func (o *LoadOptions) internal() load.Options {
	if o == nil {
		return load.Options{}
	}
	return load.Options{Workers: o.Workers, SlabBytes: o.SlabBytes,
		Format: o.Format, Compression: o.Compression}
}

// Load reads and encodes an RDF document of any supported format and
// compression from r: the compression (gzip, zstd) is sniffed from the
// magic bytes and decoded as a streaming stage — a compressed dump never
// materializes — the serialization is detected on the decoded text, and
// the result is built by the parallel pipeline, bit-identical to a
// sequential load of the plain equivalent. A nil opts detects everything
// and uses all CPUs.
func Load(r io.Reader, opts *LoadOptions) (*Graph, error) {
	return load.Reader(r, opts.internal())
}

// LoadFile is Load over a file; the name's extensions
// (.nt/.ttl × .gz/.zst) pre-seed the format and compression detection.
func LoadFile(path string, opts *LoadOptions) (*Graph, error) {
	return load.File(path, opts.internal())
}

// Stream parses an RDF document triple by triple without building a
// graph — the bulk entry point for live ingest. Compression and format
// detection work as in Load; N-Triples streams through without
// materializing, Turtle (not line-delimited) is buffered and parsed
// whole.
func Stream(r io.Reader, opts *LoadOptions, fn func(Triple) error) error {
	return load.Stream(r, opts.internal(), fn)
}

// StreamFile is Stream over a file, with name-based detection as in
// LoadFile.
func StreamFile(path string, opts *LoadOptions, fn func(Triple) error) error {
	return load.StreamFile(path, opts.internal(), fn)
}

// DetectFile reports what a file name declares about its content: the
// serialization and compression ("dump.ttl.gz" -> FormatTurtle,
// CompressionGzip). Either may come back Auto/None when the name says
// nothing; Load's content detection is the authority.
func DetectFile(path string) (Format, Compression) { return load.Detect(path) }

// NewCompressionWriter wraps w in a streaming encoder for the given
// codec (CompressionNone passes through); Close finalizes the frame
// without closing w. This is how callers — including the HTTP client's
// compressed uploads — produce dumps Load accepts.
func NewCompressionWriter(w io.Writer, c Compression) (io.WriteCloser, error) {
	return compress.NewWriter(w, c)
}

// NewCompressionReader wraps r in a streaming decoder for the given
// codec; CompressionAuto sniffs the magic bytes, CompressionNone passes
// through. Failures mid-stream surface ErrTruncatedStream or
// ErrCorruptStream (via errors.Is), never silently short data.
func NewCompressionReader(r io.Reader, c Compression) (io.ReadCloser, error) {
	return compress.NewReader(r, c)
}

// LoadNTriplesFile reads and encodes an N-Triples file sequentially.
//
// Deprecated: use LoadFile, which detects format and compression and
// loads in parallel; pass &LoadOptions{Workers: 1, Format: FormatNTriples}
// for this exact behavior.
func LoadNTriplesFile(path string) (*Graph, error) {
	return load.NTriplesFile(path, load.Options{Workers: 1})
}

// LoadNTriplesFileParallel reads and encodes an N-Triples file on multiple
// CPUs: the file is split into newline-aligned slabs parsed by concurrent
// workers feeding a sharded dictionary, then renumbered so the resulting
// Graph is bit-identical to LoadNTriplesFile's — same dictionary IDs, same
// triple order — only faster. A nil opts uses all CPUs.
//
// Deprecated: use LoadFile, which adds format and compression detection
// on the same pipeline.
func LoadNTriplesFileParallel(path string, opts *LoadOptions) (*Graph, error) {
	return load.NTriplesFile(path, opts.internal())
}

// LoadNTriplesParallel is LoadNTriplesFileParallel over an io.Reader.
//
// Deprecated: use Load, which adds format and compression detection on
// the same pipeline.
func LoadNTriplesParallel(r io.Reader, opts *LoadOptions) (*Graph, error) {
	return load.NTriples(r, opts.internal())
}

// ParseTurtle reads a document in the supported Turtle subset (prefixes,
// 'a', predicate/object lists, typed and numeric literals).
func ParseTurtle(r io.Reader) ([]Triple, error) { return turtle.Parse(r) }

// ParseTurtleString reads a Turtle document from a string.
func ParseTurtleString(s string) ([]Triple, error) { return turtle.ParseString(s) }

// LoadTurtleFile reads and encodes a Turtle file.
//
// Deprecated: use LoadFile, which detects format and compression and
// parses Turtle in parallel at statement-boundary slabs, bit-identical
// to this sequential path.
func LoadTurtleFile(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	triples, err := turtle.Parse(f)
	if err != nil {
		return nil, err
	}
	return store.FromTriples(triples), nil
}

// WriteTurtle serializes triples as prefix-compacted Turtle (prefixes are
// inferred from the data; rdf:type prints as 'a', subjects group with
// ';' / ',' lists).
func WriteTurtle(w io.Writer, triples []Triple) error {
	return turtle.Write(w, triples, nil)
}

// SaveSnapshot writes a graph (dictionary included) to the library's
// checksummed binary format.
func SaveSnapshot(path string, g *Graph) error { return store.SaveFile(path, g) }

// LoadSnapshot reads a graph saved with SaveSnapshot (either format
// version).
func LoadSnapshot(path string) (*Graph, error) { return store.LoadFile(path) }

// SnapshotInfo is the parsed layout of a snapshot file: header counts
// plus, for the v2 container format, the table of contents with each
// section's offset, length and CRC.
type SnapshotInfo = store.SnapshotInfo

// SnapshotSectionInfo is one v2 section in a SnapshotInfo.
type SnapshotSectionInfo = store.SectionInfo

// InspectSnapshot reports a snapshot file's layout without loading its
// triples: v2 files are answered from the header and TOC alone; v1 files
// must be decoded in full (their format has no TOC).
func InspectSnapshot(path string) (*SnapshotInfo, error) { return store.InspectSnapshot(path) }

// Saturate returns G∞, the closure of g under the RDFS entailment rules
// for subclass, subproperty, domain and range constraints. The semantics
// of an RDF graph is its saturation; evaluate queries against Saturate(g)
// for complete answers.
func Saturate(g *Graph) *Graph { return saturate.Graph(g) }

// Summarize builds the summary of g of the given kind with default
// options.
func Summarize(g *Graph, kind Kind) (*Summary, error) { return core.Summarize(g, kind, nil) }

// SummarizeWithOptions builds the summary of g with explicit options.
func SummarizeWithOptions(g *Graph, kind Kind, opts *Options) (*Summary, error) {
	return core.Summarize(g, kind, opts)
}

// SummarizeAll builds the summaries of every requested kind (all five
// when kinds is nil) in one shared pass over g: the class-set and clique
// state feeding the per-kind drivers is computed once, not re-derived per
// kind.
func SummarizeAll(g *Graph, kinds []Kind) (map[Kind]*Summary, error) {
	return core.SummarizeAll(g, kinds)
}

// CheckWellBehaved verifies the well-behavedness assumptions the
// summarizers rely on (no class in property position; classes carry only
// type/schema properties). It returns nil when the triples are
// well-behaved, and a non-empty slice of violations (each an error)
// otherwise.
func CheckWellBehaved(triples []Triple) []rdf.WellBehavedViolation {
	return rdf.CheckWellBehaved(triples)
}

// NewIndex builds the SPO/POS/OSP access paths used by query evaluation.
// The index is tiered (see NewIndexFanout); a batch build yields a single
// run.
func NewIndex(g *Graph) *Index { return store.NewIndex(g) }

// NewIndexFanout is NewIndex with an explicit tier fanout for the
// LSM-style delta runs live updates append (0 = default 8).
func NewIndexFanout(g *Graph, fanout int) *Index { return store.NewIndexFanout(g, fanout) }

// ParseQuery parses a SPARQL-subset BGP query (PREFIX, SELECT, ASK).
func ParseQuery(text string) (*Query, error) { return query.Parse(text) }

// EvalQuery evaluates q against g (explicit triples only — pass
// Saturate(g) for complete answers), building a transient index.
// For repeated evaluation over one graph, build the index once with
// NewIndex and use EvalQueryIndexed.
func EvalQuery(g *Graph, q *Query) (*QueryResult, error) {
	return query.Eval(g, store.NewIndex(g), q, nil)
}

// EvalQueryIndexed evaluates q using a prebuilt index.
func EvalQueryIndexed(g *Graph, ix *Index, q *Query) (*QueryResult, error) {
	return query.Eval(g, ix, q, nil)
}

// QueryOptions tune EvalQueryWithOptions.
type QueryOptions struct {
	// Limit caps the number of rows (0 = unlimited); Result.Truncated
	// reports whether more distinct answers existed.
	Limit int
	// Stats feeds summary statistics to the planner's cardinality
	// estimator and join ordering; pass (*Summary).ComputeWeights().
	// Nil falls back to the stats-free heuristic.
	Stats PlanStats
	// Pruner short-circuits provably-empty RBGP queries against a
	// saturated summary (see NewQueryPruner). Nil disables pruning.
	Pruner *QueryPruner
	// Explain requests a join-order report in Result.Explain.
	Explain bool
}

// EvalQueryWithOptions evaluates q with planner statistics, the
// summary-pruning gate and row limits under the caller's control.
func EvalQueryWithOptions(g *Graph, ix *Index, q *Query, opts *QueryOptions) (*QueryResult, error) {
	var eo *query.EvalOptions
	if opts != nil {
		eo = &query.EvalOptions{
			Limit:   opts.Limit,
			Stats:   opts.Stats,
			Pruner:  opts.Pruner,
			Explain: opts.Explain,
		}
	}
	return query.Eval(g, ix, q, eo)
}

// CompileQuery compiles q against g into a reusable plan. stats may be nil
// (heuristic join order) or a summary's Weights (cardinality-driven
// order). Execute with (*QueryPlan).Eval against an index over g.
func CompileQuery(g *Graph, q *Query, stats PlanStats) (*QueryPlan, error) {
	return query.Compile(g, q, stats)
}

// NewQueryPruner builds the summary-pruning gate from a summary: it
// saturates the (small) summary graph and indexes it as an emptiness
// oracle. RBGP queries with no answers on it are provably empty on G∞
// (Prop. 1) — and on G — so evaluation can skip the data entirely.
func NewQueryPruner(s *Summary) *QueryPruner {
	return query.NewPruner(s.Kind.String(), saturate.Graph(s.Graph))
}

// AskQuery reports whether q has at least one answer on g.
func AskQuery(g *Graph, q *Query) (bool, error) {
	return query.Ask(g, store.NewIndex(g), q)
}

// ExportDOT renders a graph (or a summary's Graph) as a Graphviz DOT
// document in the paper's visual style.
func ExportDOT(w io.Writer, g *Graph, title string) error {
	return dot.Write(w, g, &dot.Options{Title: title})
}

// GenerateBSBM builds a deterministic Berlin-SPARQL-Benchmark-shaped
// dataset with the given number of products (≈58 triples per product),
// the workload of the paper's evaluation.
func GenerateBSBM(products int) *Graph {
	return bsbm.GenerateGraph(bsbm.DefaultConfig(products))
}

// GenerateLUBM builds a deterministic LUBM-shaped university dataset with
// the given number of universities (≈3.3k triples per university): deep
// class hierarchy and subproperty families, the saturation-heavy
// complement to BSBM.
func GenerateLUBM(universities int) *Graph {
	return lubm.GenerateGraph(lubm.DefaultConfig(universities))
}

// NewBuilder returns an empty incremental builder for any summary kind:
// feed it triples with Add/AddEncoded and snapshot anytime with Summary.
// Snapshots are bit-identical to batch Summarize of the same triple set
// and do not freeze the builder.
func NewBuilder(kind Kind) (Builder, error) { return core.NewBuilder(kind) }

// NewBuilderWithGraph seeds an incremental builder with an existing
// graph's triples (the graph is adopted, not copied).
func NewBuilderWithGraph(kind Kind, g *Graph) (Builder, error) {
	return core.NewBuilderWithGraph(kind, g)
}

// NewBuilderSet returns an incremental builder maintaining several kinds
// over one shared graph, computing the shared clique/class-set state once
// per inserted triple.
func NewBuilderSet(g *Graph, kinds []Kind) (*BuilderSet, error) {
	return core.NewBuilderSet(g, kinds)
}

// NewWeakBuilder returns an empty streaming weak-summary builder; feed it
// triples with Add/AddEncoded and snapshot anytime with Summary.
func NewWeakBuilder() *WeakBuilder { return core.NewWeakBuilder() }

// NewWeakBuilderWithGraph seeds a streaming builder with an existing
// graph's triples (the graph is adopted, not copied).
func NewWeakBuilderWithGraph(g *Graph) *WeakBuilder {
	return core.NewWeakBuilderWithGraph(g)
}

// Live-update subsystem: a concurrent, durable, mutable graph. Writers
// append and delete batches (WAL-logged and fsynced before acknowledgment
// on durable stores); readers hold immutable epoch snapshots, so queries
// run at full speed during ingest; the index is tiered, so publishing an
// epoch costs O(batch); the weak summary is maintained incrementally and
// other kinds rebuild lazily per epoch. See internal/live and
// docs/live-updates.md.
type (
	// Live is a mutable graph service (single writer, many readers).
	Live = live.Live
	// LiveSnapshot is one published epoch: an immutable graph view plus
	// its triple index.
	LiveSnapshot = live.Snapshot
	// LiveStats reports a live store's serving counters.
	LiveStats = live.Stats
	// LiveKindStatus reports one summary kind's maintenance mode and
	// rebuild counters on a live store.
	LiveKindStatus = live.KindStatus
	// IngestQueue is a bounded, byte-budgeted admission queue in front
	// of a Live store's single writer: producers block only for their
	// own batch's commit, and a saturated queue fails fast with
	// ErrIngestQueueFull instead of buffering without limit.
	IngestQueue = live.IngestQueue
	// IngestQueueStats is a point-in-time view of queue occupancy.
	IngestQueueStats = live.QueueStats
)

// ErrIngestQueueFull reports that admitting a batch would exceed an
// IngestQueue's depth or byte budget; retry after a backoff.
var ErrIngestQueueFull = live.ErrQueueFull

// NewIngestQueue starts an ingest queue of at most depth batches and
// maxBytes of buffered payload draining into lv. Non-positive bounds
// select defaults (256 batches, 256 MiB). Close the queue before the
// store.
func NewIngestQueue(lv *Live, depth int, maxBytes int64) *IngestQueue {
	return live.NewIngestQueue(lv, depth, maxBytes)
}

// LiveOptions tunes OpenLive.
type LiveOptions struct {
	// NoSync disables the per-batch fsync: faster ingest, weaker
	// durability (a crash may lose recently acknowledged batches, but the
	// log stays consistent).
	NoSync bool
	// Seed is adopted as the initial graph when the directory holds no
	// prior state (it is compacted into the first snapshot); ignored
	// otherwise. The graph must not be used by the caller afterwards.
	Seed *Graph
	// Maintain lists the summary kinds the quotient engine keeps
	// incrementally current during ingest: they serve with no staleness
	// and no per-epoch rebuild. nil maintains Weak only; an explicit
	// empty slice maintains nothing (every kind rebuilds lazily).
	Maintain []Kind
	// IndexFanout is the tiered index's fold width: once this many
	// trailing delta runs share a level they merge into one run of the
	// next level. 0 selects the default (8). Smaller values trade ingest
	// throughput for fewer runs on the query path.
	IndexFanout int
	// IndexSpillBytes, when positive, lets the tiered index spill folded
	// runs whose columnar encoding reaches this many bytes to on-disk
	// run files under <dir>/spill, served zero-copy through the same
	// mapped format as v2 snapshots. 0 keeps every run in memory.
	// Ignored by memory-only stores.
	IndexSpillBytes int64
	// VerifySnapshot forces eager CRC verification of every section of a
	// v2 snapshot at open, restoring v1's open-time integrity check at
	// the cost of reading the whole file. By default sections are
	// verified lazily on first touch.
	VerifySnapshot bool
}

// OpenLive opens (or initializes) a durable live store in dir: the
// current snapshot is loaded, the write-ahead log replayed over it (a
// torn tail from a crash is truncated, so exactly the acknowledged
// batches recover), and the first epoch published.
func OpenLive(dir string, opts *LiveOptions) (*Live, error) {
	return live.Open(dir, internalLiveOptions(opts))
}

func internalLiveOptions(opts *LiveOptions) live.Options {
	if opts == nil {
		return live.Options{}
	}
	return live.Options{
		NoSync:          opts.NoSync,
		Seed:            opts.Seed,
		Maintain:        opts.Maintain,
		IndexFanout:     opts.IndexFanout,
		IndexSpillBytes: opts.IndexSpillBytes,
		VerifySnapshot:  opts.VerifySnapshot,
	}
}

// NewLive wraps a graph (nil for empty) as a memory-only live store: the
// same concurrency model — epoch snapshots, incremental weak summary —
// without durability. The graph is adopted, not copied.
func NewLive(g *Graph) *Live { return live.New(g) }

// NewLiveMaintaining is NewLive with an explicit set of incrementally
// maintained summary kinds (nil = weak only, empty = none).
func NewLiveMaintaining(g *Graph, kinds []Kind) *Live {
	return live.NewMaintaining(g, kinds)
}

// NewLiveWithOptions is the memory-only constructor honoring Maintain and
// IndexFanout (NoSync and Seed are ignored without a directory).
func NewLiveWithOptions(g *Graph, opts *LiveOptions) *Live {
	return live.NewWithOptions(g, internalLiveOptions(opts))
}

// LiveHasState reports whether dir already holds an initialized live
// store, i.e. whether OpenLive would adopt or ignore a Seed.
func LiveHasState(dir string) bool { return live.HasState(dir) }
