// Benchmarks regenerating the paper's evaluation artifacts (§7). Each
// figure and table of the paper maps to one Benchmark* function below (see
// DESIGN.md §3 for the index); EXPERIMENTS.md records paper-vs-measured.
//
// Sizes are BSBM product counts: 200 ≈ 12k triples, 1000 ≈ 58k, 5000 ≈
// 290k. The paper sweeps 10M–100M on a Postgres-backed Java prototype;
// shapes (who wins, growth trends), not absolute numbers, are the target.
package rdfsum_test

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"

	"rdfsum"
	"rdfsum/internal/cliques"
	"rdfsum/internal/core"
	"rdfsum/internal/ntriples"
	"rdfsum/internal/rdf"
	"rdfsum/internal/samples"
	"rdfsum/internal/store"
)

var benchSizes = []int{200, 1000, 5000}

// benchKinds are the paper-evaluated kinds, enumerated from the
// library's kind table.
var benchKinds = rdfsum.PaperKinds

var (
	bsbmMu    sync.Mutex
	bsbmCache = map[int]*rdfsum.Graph{}
)

func bsbmGraph(b *testing.B, products int) *rdfsum.Graph {
	b.Helper()
	bsbmMu.Lock()
	defer bsbmMu.Unlock()
	if g, ok := bsbmCache[products]; ok {
		return g
	}
	g := rdfsum.GenerateBSBM(products)
	bsbmCache[products] = g
	return g
}

// BenchmarkFig11Nodes regenerates Figure 11: the number of data nodes
// (top panel) and all nodes (bottom panel) of each summary across the
// BSBM sweep, reported as custom metrics alongside the build time.
func BenchmarkFig11Nodes(b *testing.B) {
	for _, products := range benchSizes {
		g := bsbmGraph(b, products)
		for _, kind := range benchKinds {
			b.Run(fmt.Sprintf("%s/products=%d", kind, products), func(b *testing.B) {
				var stats rdfsum.Stats
				for i := 0; i < b.N; i++ {
					s, err := rdfsum.Summarize(g, kind)
					if err != nil {
						b.Fatal(err)
					}
					stats = s.Stats
				}
				b.ReportMetric(float64(stats.DataNodes), "datanodes")
				b.ReportMetric(float64(stats.AllNodes), "allnodes")
			})
		}
	}
}

// BenchmarkFig12Edges regenerates Figure 12: the number of data edges
// (top panel) and all edges (bottom panel) of each summary.
func BenchmarkFig12Edges(b *testing.B) {
	for _, products := range benchSizes {
		g := bsbmGraph(b, products)
		for _, kind := range benchKinds {
			b.Run(fmt.Sprintf("%s/products=%d", kind, products), func(b *testing.B) {
				var stats rdfsum.Stats
				for i := 0; i < b.N; i++ {
					s, err := rdfsum.Summarize(g, kind)
					if err != nil {
						b.Fatal(err)
					}
					stats = s.Stats
				}
				b.ReportMetric(float64(stats.DataEdges), "dataedges")
				b.ReportMetric(float64(stats.AllEdges), "alledges")
				b.ReportMetric(stats.CompressionRatio(), "compression")
			})
		}
	}
}

// BenchmarkFig13SummarizationTime regenerates Figure 13: summarization
// wall-clock time per kind and size (ns/op is the figure's series; the
// paper reports seconds at 10–100M triples on Postgres).
func BenchmarkFig13SummarizationTime(b *testing.B) {
	for _, products := range benchSizes {
		g := bsbmGraph(b, products)
		for _, kind := range benchKinds {
			b.Run(fmt.Sprintf("%s/products=%d", kind, products), func(b *testing.B) {
				b.ReportMetric(float64(g.NumEdges()), "triples")
				for i := 0; i < b.N; i++ {
					if _, err := rdfsum.Summarize(g, kind); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkTable1Cliques regenerates Table 1's computation: the source and
// target property cliques, on the paper's sample graph and on BSBM data.
func BenchmarkTable1Cliques(b *testing.B) {
	b.Run("fig2", func(b *testing.B) {
		g := samples.Fig2()
		for i := 0; i < b.N; i++ {
			cliques.Compute(g.Data)
		}
	})
	for _, products := range benchSizes {
		g := bsbmGraph(b, products)
		b.Run(fmt.Sprintf("bsbm/products=%d", products), func(b *testing.B) {
			var asg *cliques.Assignment
			for i := 0; i < b.N; i++ {
				asg = cliques.Compute(g.Data)
			}
			b.ReportMetric(float64(len(asg.SrcMembers)), "srccliques")
			b.ReportMetric(float64(len(asg.TgtMembers)), "tgtcliques")
		})
	}
}

// BenchmarkAblationWeakIncrementalVsGlobal compares the paper's one-pass
// weak algorithm (no clique materialization, §6) against the clique-based
// construction — the design choice behind the paper's observation that
// weak summaries build faster than strong ones.
func BenchmarkAblationWeakIncrementalVsGlobal(b *testing.B) {
	for _, products := range benchSizes {
		g := bsbmGraph(b, products)
		b.Run(fmt.Sprintf("incremental/products=%d", products), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := rdfsum.SummarizeWithOptions(g, rdfsum.Weak,
					&rdfsum.Options{WeakAlgorithm: core.Incremental}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("global/products=%d", products), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := rdfsum.SummarizeWithOptions(g, rdfsum.Weak,
					&rdfsum.Options{WeakAlgorithm: core.Global}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationSaturationShortcut compares computing W_{G∞} the
// expensive way (saturate G, summarize) against the Prop. 5 shortcut
// (summarize, saturate the small summary, resummarize).
func BenchmarkAblationSaturationShortcut(b *testing.B) {
	g := bsbmGraph(b, 1000)
	b.Run("saturate-then-summarize", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			inf := rdfsum.Saturate(g)
			if _, err := rdfsum.Summarize(inf, rdfsum.Weak); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("shortcut", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s, err := rdfsum.Summarize(g, rdfsum.Weak)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := rdfsum.Summarize(rdfsum.Saturate(s.Graph), rdfsum.Weak); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationParallelWeak measures the shared-memory parallel weak
// construction (the paper's future-work scalability direction) against
// worker counts; workers=1 is the sequential baseline.
func BenchmarkAblationParallelWeak(b *testing.B) {
	g := bsbmGraph(b, 5000)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := rdfsum.SummarizeWithOptions(g, rdfsum.Weak,
					&rdfsum.Options{Workers: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkStreamingBuilder measures the amortized per-triple cost of the
// incremental weak builder (maintenance mode) against batch rebuilds.
func BenchmarkStreamingBuilder(b *testing.B) {
	g := bsbmGraph(b, 1000)
	decoded := g.Decode()
	b.Run("stream-all", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			builder := rdfsum.NewWeakBuilder()
			for _, t := range decoded {
				builder.Add(t)
			}
			builder.Summary()
		}
	})
	b.Run("batch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := rdfsum.Summarize(rdfsum.NewGraph(decoded), rdfsum.Weak); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkLUBMSummaries runs the four summaries on the LUBM workload
// (deep hierarchy, subproperty families) — the cross-dataset check of the
// extended report.
func BenchmarkLUBMSummaries(b *testing.B) {
	g := rdfsum.GenerateLUBM(8) // ≈26k triples
	for _, kind := range benchKinds {
		b.Run(kind.String(), func(b *testing.B) {
			var stats rdfsum.Stats
			for i := 0; i < b.N; i++ {
				s, err := rdfsum.Summarize(g, kind)
				if err != nil {
					b.Fatal(err)
				}
				stats = s.Stats
			}
			b.ReportMetric(float64(stats.DataNodes), "datanodes")
			b.ReportMetric(float64(stats.AllEdges), "alledges")
		})
	}
}

// --- substrate micro-benchmarks -------------------------------------------

func BenchmarkNTriplesParse(b *testing.B) {
	g := bsbmGraph(b, 200)
	var buf bytes.Buffer
	if err := ntriples.Write(&buf, g.Decode()); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ntriples.Parse(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}

// ntData renders a cached BSBM graph as N-Triples bytes for the load
// benchmarks.
var (
	ntMu    sync.Mutex
	ntCache = map[int][]byte{}
)

func ntData(b *testing.B, products int) []byte {
	b.Helper()
	g := bsbmGraph(b, products)
	ntMu.Lock()
	defer ntMu.Unlock()
	if data, ok := ntCache[products]; ok {
		return data
	}
	var buf bytes.Buffer
	if err := ntriples.Write(&buf, g.Decode()); err != nil {
		b.Fatal(err)
	}
	ntCache[products] = buf.Bytes()
	return ntCache[products]
}

// BenchmarkLoadNTriples compares the sequential load-and-encode path with
// the parallel ingestion pipeline at growing worker counts, on ~290k
// BSBM triples (products=5000).
func BenchmarkLoadNTriples(b *testing.B) {
	data := ntData(b, 5000)
	b.Run("sequential", func(b *testing.B) {
		b.SetBytes(int64(len(data)))
		for i := 0; i < b.N; i++ {
			g := rdfsum.EmptyGraph()
			if err := rdfsum.ParseStream(bytes.NewReader(data), func(t rdfsum.Triple) error {
				g.Add(t)
				return nil
			}); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("parallel/workers=%d", workers), func(b *testing.B) {
			b.SetBytes(int64(len(data)))
			for i := 0; i < b.N; i++ {
				if _, err := rdfsum.LoadNTriplesParallel(bytes.NewReader(data),
					&rdfsum.LoadOptions{Workers: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkLoadNTriples1M is the acceptance benchmark for the parallel
// ingestion pipeline: a ≥1M-triple BSBM input (products=17500 ≈ 1.01M
// triples), sequential vs 4 and 8 workers. Skipped under -short — the
// dataset generation alone takes tens of seconds.
func BenchmarkLoadNTriples1M(b *testing.B) {
	if testing.Short() {
		b.Skip("1M-triple load benchmark skipped in -short mode")
	}
	data := ntData(b, 17500)
	b.Run("sequential", func(b *testing.B) {
		b.SetBytes(int64(len(data)))
		for i := 0; i < b.N; i++ {
			if _, err := rdfsum.LoadNTriplesParallel(bytes.NewReader(data),
				&rdfsum.LoadOptions{Workers: 1}); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, workers := range []int{4, 8} {
		b.Run(fmt.Sprintf("parallel/workers=%d", workers), func(b *testing.B) {
			b.SetBytes(int64(len(data)))
			for i := 0; i < b.N; i++ {
				if _, err := rdfsum.LoadNTriplesParallel(bytes.NewReader(data),
					&rdfsum.LoadOptions{Workers: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkLoadNTriplesLUBM is the cross-dataset load check (≈33k triples,
// 10 universities).
func BenchmarkLoadNTriplesLUBM(b *testing.B) {
	g := rdfsum.GenerateLUBM(10)
	var buf bytes.Buffer
	if err := ntriples.Write(&buf, g.Decode()); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.SetBytes(int64(len(data)))
			for i := 0; i < b.N; i++ {
				if _, err := rdfsum.LoadNTriplesParallel(bytes.NewReader(data),
					&rdfsum.LoadOptions{Workers: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkStreamingIngest is the streaming-ingest acceptance number: a
// cold compressed dump on disk to a serving summary. Each iteration is
// what rdfsumd does between boot and its first answered query — open
// the file, decode gzip as a streaming stage feeding the parallel
// loader, and build the weak summary. Measured for gzipped N-Triples
// and gzipped Turtle (~58k triples, BSBM products=1000); bytes/op
// reports decoded throughput.
func BenchmarkStreamingIngest(b *testing.B) {
	g := bsbmGraph(b, 1000)
	write := map[string]func(*bytes.Buffer) error{
		"ntriples-gzip": func(buf *bytes.Buffer) error { return ntriples.Write(buf, g.Decode()) },
		"turtle-gzip":   func(buf *bytes.Buffer) error { return rdfsum.WriteTurtle(buf, g.Decode()) },
	}
	for _, name := range []string{"ntriples-gzip", "turtle-gzip"} {
		b.Run(name, func(b *testing.B) {
			var plain bytes.Buffer
			if err := write[name](&plain); err != nil {
				b.Fatal(err)
			}
			ext := ".nt.gz"
			if name == "turtle-gzip" {
				ext = ".ttl.gz"
			}
			path := filepath.Join(b.TempDir(), "dump"+ext)
			f, err := os.Create(path)
			if err != nil {
				b.Fatal(err)
			}
			zw, err := rdfsum.NewCompressionWriter(f, rdfsum.CompressionGzip)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := zw.Write(plain.Bytes()); err != nil {
				b.Fatal(err)
			}
			if err := zw.Close(); err != nil {
				b.Fatal(err)
			}
			if err := f.Close(); err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(plain.Len()))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				loaded, err := rdfsum.LoadFile(path, nil)
				if err != nil {
					b.Fatal(err)
				}
				if loaded.NumEdges() != g.NumEdges() {
					b.Fatalf("loaded %d triples, want %d", loaded.NumEdges(), g.NumEdges())
				}
				if _, err := rdfsum.Summarize(loaded, rdfsum.Weak); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkSaturate(b *testing.B) {
	for _, products := range benchSizes {
		g := bsbmGraph(b, products)
		b.Run(fmt.Sprintf("products=%d", products), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rdfsum.Saturate(g)
			}
		})
	}
}

func BenchmarkIndexBuild(b *testing.B) {
	g := bsbmGraph(b, 1000)
	for i := 0; i < b.N; i++ {
		store.NewIndex(g)
	}
}

// --- query engine benchmarks -----------------------------------------------
//
// The compile/execute engine: BSBM and LUBM query mixes, planned (summary
// Weights drive the static join order) vs. greedy (runtime index counts
// only), and pruned (saturated-summary emptiness gate) vs. unpruned.

// bsbmQueryMix is a BSBM-shaped BGP workload: star joins over offers,
// chain joins through reviews, and a type-constrained lookup.
var bsbmQueryMix = []string{
	`PREFIX bsbm: <http://bsbm.example.org/vocabulary/>
	 SELECT ?p ?v WHERE {
		?o bsbm:product ?p .
		?o bsbm:vendor ?v .
		?r bsbm:reviewFor ?p .
		?r bsbm:rating1 ?score
	 }`,
	`PREFIX bsbm: <http://bsbm.example.org/vocabulary/>
	 SELECT ?p ?c WHERE {
		?p bsbm:producer ?pr .
		?o bsbm:product ?p .
		?o bsbm:price ?c
	 }`,
	`PREFIX bsbm: <http://bsbm.example.org/vocabulary/>
	 SELECT ?r ?d WHERE { ?r bsbm:reviewFor ?p . ?r bsbm:reviewDate ?d }`,
	`PREFIX bsbm: <http://bsbm.example.org/vocabulary/>
	 PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
	 SELECT ?p WHERE { ?p rdf:type bsbm:Product . ?p bsbm:producer ?x }`,
}

// lubmQueryMix exercises the university workload: hierarchical joins and
// a triangle (student — advisor — department).
var lubmQueryMix = []string{
	`PREFIX ub: <http://lubm.example.org/univ-bench.owl#>
	 SELECT ?x ?u WHERE { ?x ub:headOf ?d . ?d ub:subOrganizationOf ?u }`,
	`PREFIX ub: <http://lubm.example.org/univ-bench.owl#>
	 SELECT ?s WHERE { ?s ub:memberOf ?d . ?s ub:advisor ?p . ?p ub:worksFor ?d }`,
	`PREFIX ub: <http://lubm.example.org/univ-bench.owl#>
	 SELECT ?s ?c WHERE {
		?x ub:worksFor ?d .
		?x ub:teacherOf ?c .
		?s ub:advisor ?x .
		?s ub:takesCourse ?c
	 }`,
}

// bsbmEmptyMix is provably-empty on G∞: the pattern combinations cross
// disjoint entity kinds (offers never carry review properties), which the
// weak summary's saturated form detects.
var bsbmEmptyMix = []string{
	`PREFIX bsbm: <http://bsbm.example.org/vocabulary/>
	 SELECT ?o WHERE { ?o bsbm:price ?x . ?o bsbm:reviewDate ?d }`,
	`PREFIX bsbm: <http://bsbm.example.org/vocabulary/>
	 SELECT ?p WHERE { ?p bsbm:producer ?x . ?p bsbm:reviewFor ?r }`,
	`PREFIX bsbm: <http://bsbm.example.org/vocabulary/>
	 SELECT ?o WHERE { ?o bsbm:vendor ?v . ?o bsbm:rating1 ?s }`,
}

func parseMix(b *testing.B, texts []string) []*rdfsum.Query {
	b.Helper()
	qs := make([]*rdfsum.Query, len(texts))
	for i, text := range texts {
		q, err := rdfsum.ParseQuery(text)
		if err != nil {
			b.Fatal(err)
		}
		qs[i] = q
	}
	return qs
}

// runEngineMix evaluates the whole mix once per iteration under the given
// options, so planned-vs-greedy compares on identical work.
func runEngineMix(b *testing.B, g *rdfsum.Graph, ix *rdfsum.Index, qs []*rdfsum.Query, opts *rdfsum.QueryOptions) {
	b.Helper()
	rows := 0
	for i := 0; i < b.N; i++ {
		rows = 0
		for _, q := range qs {
			res, err := rdfsum.EvalQueryWithOptions(g, ix, q, opts)
			if err != nil {
				b.Fatal(err)
			}
			rows += len(res.Rows)
		}
	}
	b.ReportMetric(float64(rows), "rows")
}

// BenchmarkQueryEngineBSBM: the BSBM mix, greedy (runtime index counts
// only) vs. planned (weak-summary Weights choose the static join order).
func BenchmarkQueryEngineBSBM(b *testing.B) {
	g := bsbmGraph(b, 1000)
	ix := rdfsum.NewIndex(g)
	qs := parseMix(b, bsbmQueryMix)
	s, err := rdfsum.Summarize(g, rdfsum.Weak)
	if err != nil {
		b.Fatal(err)
	}
	w := s.ComputeWeights()
	b.Run("greedy", func(b *testing.B) {
		runEngineMix(b, g, ix, qs, &rdfsum.QueryOptions{})
	})
	b.Run("planned", func(b *testing.B) {
		runEngineMix(b, g, ix, qs, &rdfsum.QueryOptions{Stats: w})
	})
}

// BenchmarkQueryEngineLUBM: the university mix on the saturation-heavy
// dataset (evaluated on G, the explicit triples).
func BenchmarkQueryEngineLUBM(b *testing.B) {
	g := rdfsum.GenerateLUBM(4)
	ix := rdfsum.NewIndex(g)
	qs := parseMix(b, lubmQueryMix)
	s, err := rdfsum.Summarize(g, rdfsum.TypedWeak)
	if err != nil {
		b.Fatal(err)
	}
	w := s.ComputeWeights()
	b.Run("greedy", func(b *testing.B) {
		runEngineMix(b, g, ix, qs, &rdfsum.QueryOptions{})
	})
	b.Run("planned", func(b *testing.B) {
		runEngineMix(b, g, ix, qs, &rdfsum.QueryOptions{Stats: w})
	})
}

// BenchmarkQueryPruningBSBM: provably-empty queries, evaluated against the
// full graph vs. short-circuited by the weak-summary pruning gate (gate
// construction is outside the timed loop, as in a serving process).
func BenchmarkQueryPruningBSBM(b *testing.B) {
	g := bsbmGraph(b, 1000)
	ix := rdfsum.NewIndex(g)
	qs := parseMix(b, bsbmEmptyMix)
	s, err := rdfsum.Summarize(g, rdfsum.Weak)
	if err != nil {
		b.Fatal(err)
	}
	pruner := rdfsum.NewQueryPruner(s)
	for _, q := range qs {
		if !pruner.ProvablyEmpty(q) {
			b.Fatalf("benchmark query not pruned by the weak summary: %s", q)
		}
	}
	b.Run("unpruned", func(b *testing.B) {
		runEngineMix(b, g, ix, qs, &rdfsum.QueryOptions{})
	})
	b.Run("pruned", func(b *testing.B) {
		runEngineMix(b, g, ix, qs, &rdfsum.QueryOptions{Pruner: pruner})
	})
}

// BenchmarkQueryCompile: the per-query planning cost a serving process
// pays before execution (or amortizes via CompileQuery).
func BenchmarkQueryCompile(b *testing.B) {
	g := bsbmGraph(b, 1000)
	qs := parseMix(b, bsbmQueryMix)
	s, err := rdfsum.Summarize(g, rdfsum.Weak)
	if err != nil {
		b.Fatal(err)
	}
	w := s.ComputeWeights()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, q := range qs {
			if _, err := rdfsum.CompileQuery(g, q, w); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkCardinalityEstimation: the summary-based whole-query estimator
// over the committed mixes — ns/op is the planning-time cost of estimating
// the mix, and the custom metrics report its accuracy as q-error
// (max(est/actual, actual/est), floored at one row) against the true
// number of embeddings, measured once per mix outside the timed loop.
func BenchmarkCardinalityEstimation(b *testing.B) {
	mixes := []struct {
		name  string
		graph *rdfsum.Graph
		kind  rdfsum.Kind
		mix   []string
	}{
		{"bsbm", bsbmGraph(b, 1000), rdfsum.Weak, bsbmQueryMix},
		{"lubm", rdfsum.GenerateLUBM(4), rdfsum.TypedWeak, lubmQueryMix},
	}
	for _, m := range mixes {
		b.Run(m.name, func(b *testing.B) {
			s, err := rdfsum.Summarize(m.graph, m.kind)
			if err != nil {
				b.Fatal(err)
			}
			w := s.ComputeWeights()
			ix := rdfsum.NewIndex(m.graph)
			qs := parseMix(b, m.mix)

			// Accuracy: q-error of the whole-query estimate vs. the exact
			// embedding count (all body variables projected).
			qerrs := make([]float64, 0, len(qs))
			for _, q := range qs {
				full := &rdfsum.Query{Patterns: q.Patterns}
				res, err := rdfsum.EvalQueryWithOptions(m.graph, ix, full,
					&rdfsum.QueryOptions{Stats: w, Explain: true})
				if err != nil {
					b.Fatal(err)
				}
				est, act := float64(res.Explain.QueryEst), float64(len(res.Rows))
				if est < 1 {
					est = 1
				}
				if act < 1 {
					act = 1
				}
				qe := est / act
				if qe < 1 {
					qe = 1 / qe
				}
				qerrs = append(qerrs, qe)
			}
			sort.Float64s(qerrs)

			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, q := range qs {
					if _, err := rdfsum.CompileQuery(m.graph, q, w); err != nil {
						b.Fatal(err)
					}
				}
			}
			// After the timed loop: ResetTimer clears custom metrics.
			b.ReportMetric(qerrs[len(qerrs)/2], "qerr-median")
			b.ReportMetric(qerrs[len(qerrs)-1], "qerr-max")
		})
	}
}

func BenchmarkQueryEval(b *testing.B) {
	g := bsbmGraph(b, 1000)
	ix := rdfsum.NewIndex(g)
	q, err := rdfsum.ParseQuery(`
		PREFIX bsbm: <http://bsbm.example.org/vocabulary/>
		SELECT ?p ?v WHERE {
			?o bsbm:product ?p .
			?o bsbm:vendor ?v .
			?r bsbm:reviewFor ?p .
			?r bsbm:rating1 ?score
		}`)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := rdfsum.EvalQueryIndexed(g, ix, q)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) == 0 {
			b.Fatal("expected answers")
		}
	}
}

// --- live-update subsystem benchmarks --------------------------------------
//
// The write path (WAL append + fsync + apply + epoch publication) and the
// recovery path (replay on open). Batches are the group-commit unit, so
// triples/s scales with batch size; the fsync variants bound the
// durability tax on this machine's storage.

// liveBatches slices a BSBM graph's triples into ingest batches.
func liveBatches(b *testing.B, products, batchSize int) [][]rdfsum.Triple {
	b.Helper()
	decoded := bsbmGraph(b, products).Decode()
	var out [][]rdfsum.Triple
	for i := 0; i < len(decoded); i += batchSize {
		out = append(out, decoded[i:min(i+batchSize, len(decoded))])
	}
	return out
}

// BenchmarkLiveIngest measures ingesting ~12k BSBM triples in 1k-triple
// batches: memory-only (pure apply+publish cost), WAL without fsync
// (logging cost), and WAL with fsync per batch (full durability).
func BenchmarkLiveIngest(b *testing.B) {
	batches := liveBatches(b, 200, 1024)
	total := 0
	for _, bt := range batches {
		total += len(bt)
	}
	run := func(b *testing.B, open func() (*rdfsum.Live, error)) {
		b.Helper()
		for i := 0; i < b.N; i++ {
			lv, err := open()
			if err != nil {
				b.Fatal(err)
			}
			for _, bt := range batches {
				if err := lv.AddBatch(bt); err != nil {
					b.Fatal(err)
				}
			}
			if lv.Snapshot().Graph.NumEdges() != total {
				b.Fatal("ingest lost triples")
			}
			lv.Close()
		}
		b.ReportMetric(float64(total), "triples")
	}
	b.Run("memory", func(b *testing.B) {
		run(b, func() (*rdfsum.Live, error) { return rdfsum.NewLive(nil), nil })
	})
	b.Run("wal-nosync", func(b *testing.B) {
		run(b, func() (*rdfsum.Live, error) {
			return rdfsum.OpenLive(b.TempDir(), &rdfsum.LiveOptions{NoSync: true})
		})
	})
	b.Run("wal-fsync", func(b *testing.B) {
		run(b, func() (*rdfsum.Live, error) {
			return rdfsum.OpenLive(b.TempDir(), nil)
		})
	})
}

// BenchmarkLiveIngestTiered isolates the publish cost the tiered index
// bounds: a memory-only live store is pre-loaded to 1x/10x/100x the base
// size, then the benchmark measures AddBatch of a fixed 1k-triple batch.
// Under the PR-3 linear index merge this grew with the total graph
// (O(n + k log k) per batch); with tiered delta runs it is ~flat across
// the three sizes — per-batch work depends on the batch, not the store.
func BenchmarkLiveIngestTiered(b *testing.B) {
	const (
		batchSize = 1024
		baseSize  = 10_000
	)
	for _, mult := range []int{1, 10, 100} {
		preload := baseSize * mult
		b.Run(fmt.Sprintf("preloaded=%d", preload), func(b *testing.B) {
			lv := rdfsum.NewLive(nil)
			defer lv.Close()
			fed := 0
			for batchNo := 0; fed < preload; batchNo++ {
				batch := incBatch(batchNo, batchSize)
				if err := lv.AddBatch(batch); err != nil {
					b.Fatal(err)
				}
				fed += len(batch)
			}
			// Measure with one fixed batch whose terms are interned up
			// front, so the loop times the apply+publish path (graph
			// append, summary maintenance, delta-run publish) rather
			// than dictionary growth.
			batch := incBatch(1_000_000, batchSize)
			if err := lv.AddBatch(batch); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := lv.AddBatch(batch); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(batchSize), "triples/batch")
			b.ReportMetric(float64(lv.Stats().IndexRuns), "index-runs")
		})
	}
}

// BenchmarkLiveDelete measures a 64-triple delete batch against a ~58k
// store: the WAL record, the copy-on-write component compaction, the
// exact summary decrements and the tombstone-run publish.
func BenchmarkLiveDelete(b *testing.B) {
	decoded := bsbmGraph(b, 1000).Decode()
	lv := rdfsum.NewLive(rdfsum.NewGraph(decoded))
	defer lv.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := (i * 64) % (len(decoded) - 64)
		if _, err := lv.DeleteBatch(decoded[start : start+64]); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(64, "triples/batch")
}

// BenchmarkWALReplay measures crash-recovery speed: reopening a store
// whose state lives entirely in the WAL (~12k triples), which replays
// every record into the graph, the incremental weak summary, and the
// first epoch's index.
func BenchmarkWALReplay(b *testing.B) {
	dir := b.TempDir()
	lv, err := rdfsum.OpenLive(dir, &rdfsum.LiveOptions{NoSync: true})
	if err != nil {
		b.Fatal(err)
	}
	total := 0
	for _, bt := range liveBatches(b, 200, 1024) {
		if err := lv.AddBatch(bt); err != nil {
			b.Fatal(err)
		}
		total += len(bt)
	}
	if err := lv.Close(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		re, err := rdfsum.OpenLive(dir, &rdfsum.LiveOptions{NoSync: true})
		if err != nil {
			b.Fatal(err)
		}
		if re.Snapshot().Graph.NumEdges() != total {
			b.Fatal("replay lost triples")
		}
		re.Close()
	}
	b.ReportMetric(float64(total), "triples")
}

func BenchmarkSnapshotRoundTrip(b *testing.B) {
	g := bsbmGraph(b, 200)
	b.Run("write", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var buf bytes.Buffer
			if err := store.WriteSnapshot(&buf, g); err != nil {
				b.Fatal(err)
			}
		}
	})
	var buf bytes.Buffer
	if err := store.WriteSnapshot(&buf, g); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.Run("read", func(b *testing.B) {
		b.SetBytes(int64(len(data)))
		for i := 0; i < b.N; i++ {
			if _, err := store.ReadSnapshot(bytes.NewReader(data)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// incBatch builds one deterministic ingest batch of ~n triples over a
// small property/class pool, typing each node before its data edge (the
// live store's recommended shape — no maintenance rebuilds).
func incBatch(i, n int) []rdfsum.Triple {
	out := make([]rdfsum.Triple, 0, n+n/4)
	for j := 0; j < n; j++ {
		s := rdfsum.NewIRI(fmt.Sprintf("http://inc/s%d-%d", i, j))
		if j%4 == 0 {
			out = append(out, rdfsum.NewTriple(s, rdfsum.NewIRI(rdf.RDFType),
				rdfsum.NewIRI(fmt.Sprintf("http://inc/C%d", j%3))))
		}
		out = append(out, rdfsum.NewTriple(s,
			rdfsum.NewIRI(fmt.Sprintf("http://inc/p%d", j%7)),
			rdfsum.NewIRI(fmt.Sprintf("http://inc/o%d", j%13))))
	}
	return out
}

// BenchmarkIncrementalSummaries measures the quotient engine per kind:
// "add-batch" is the maintenance cost of absorbing one 512-triple batch
// into a builder already holding a ~58k-triple BSBM graph (O(Δ) — the
// base does not get re-scanned), and "snapshot" is the cost of
// materializing the maintained summary from engine state (O(state), no
// re-summarization). Contrast with BenchmarkFig13SummarizationTime, the
// O(|G|) batch rebuild these paths replace in the live store.
func BenchmarkIncrementalSummaries(b *testing.B) {
	const batchSize = 512
	base := bsbmGraph(b, 1000).Decode()
	for _, kind := range rdfsum.Kinds {
		b.Run(kind.String()+"/add-batch", func(b *testing.B) {
			builder, err := rdfsum.NewBuilderWithGraph(kind, rdfsum.NewGraph(base))
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, t := range incBatch(i, batchSize) {
					builder.Add(t)
				}
			}
			b.ReportMetric(batchSize, "triples/batch")
		})
		b.Run(kind.String()+"/snapshot", func(b *testing.B) {
			builder, err := rdfsum.NewBuilderWithGraph(kind, rdfsum.NewGraph(base))
			if err != nil {
				b.Fatal(err)
			}
			for _, t := range incBatch(0, batchSize) {
				builder.Add(t)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				builder.Summary()
			}
			if builder.Rebuilds() != 0 {
				b.Fatalf("%v: unexpected maintenance rebuilds", kind)
			}
		})
	}
}

// BenchmarkWALReplayMaintained is BenchmarkWALReplay with every summary
// kind maintained: recovery replays each record into the graph, all five
// incremental builders, and the first epoch's index.
func BenchmarkWALReplayMaintained(b *testing.B) {
	dir := b.TempDir()
	opts := &rdfsum.LiveOptions{NoSync: true, Maintain: rdfsum.Kinds}
	lv, err := rdfsum.OpenLive(dir, opts)
	if err != nil {
		b.Fatal(err)
	}
	total := 0
	for _, bt := range liveBatches(b, 200, 1024) {
		if err := lv.AddBatch(bt); err != nil {
			b.Fatal(err)
		}
		total += len(bt)
	}
	if err := lv.Close(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		re, err := rdfsum.OpenLive(dir, opts)
		if err != nil {
			b.Fatal(err)
		}
		if re.Snapshot().Graph.NumEdges() != total {
			b.Fatal("replay lost triples")
		}
		re.Close()
	}
	b.ReportMetric(float64(total), "triples")
}
